(* A persistent work-stealing pool.

   The first-generation pool had three pathologies that made parallel
   runs *slower* than sequential on small-core machines (recorded in
   bench/BENCH_par.json at 0.04-0.09x): a fresh set of domains was
   spawned and joined around every [with_pool] call, every task went
   through one mutex-guarded shared queue, and [parallel_init] boxed
   every result in an option cell and unwrapped with a full extra pass.
   This version keeps domains alive across calls ([shared]), gives each
   domain its own deque (owner pops LIFO at the bottom, thieves take
   FIFO from the top, so contention is per-deque and cold tasks migrate
   first), sizes chunks adaptively from measured per-item latency, takes
   a sequential fast path when a batch is too small to pay for a
   fan-out, and writes results unboxed into the final array.

   Determinism is unchanged: the pool decides only *where* index [i]
   runs, never what it computes, so pooled output is bit-identical to
   sequential output for self-contained work items. *)

(* --- per-domain deques ---------------------------------------------

   A growable ring buffer under its own small mutex. Indices [head]
   (steal end, oldest task) and [tail] (owner end) increase
   monotonically; occupancy is [tail - head] and slot [i] lives at
   [i land (capacity - 1)]. A mutex per deque is plenty here: tasks are
   whole chunks (hundreds of microseconds by construction), so deque
   operations are far off the critical path. *)

let nop_task () = ()

type deque = {
  dlock : Mutex.t;
  mutable buf : (unit -> unit) array;
  mutable head : int;
  mutable tail : int;
}

let deque_create () =
  { dlock = Mutex.create (); buf = Array.make 16 nop_task; head = 0; tail = 0 }

let deque_grow d =
  let n = Array.length d.buf in
  let buf = Array.make (2 * n) nop_task in
  for i = d.head to d.tail - 1 do
    buf.(i land ((2 * n) - 1)) <- d.buf.(i land (n - 1))
  done;
  d.buf <- buf

let push_bottom d task =
  Mutex.lock d.dlock;
  if d.tail - d.head = Array.length d.buf then deque_grow d;
  d.buf.(d.tail land (Array.length d.buf - 1)) <- task;
  d.tail <- d.tail + 1;
  Mutex.unlock d.dlock

(* Owner end: newest task first, so a domain finishes the work it just
   queued while thieves drain the oldest (coldest) tasks. *)
let pop_bottom d =
  Mutex.lock d.dlock;
  let r =
    if d.tail = d.head then None
    else begin
      d.tail <- d.tail - 1;
      let i = d.tail land (Array.length d.buf - 1) in
      let t = d.buf.(i) in
      d.buf.(i) <- nop_task;
      Some t
    end
  in
  Mutex.unlock d.dlock;
  r

let steal_top d =
  Mutex.lock d.dlock;
  let r =
    if d.tail = d.head then None
    else begin
      let i = d.head land (Array.length d.buf - 1) in
      let t = d.buf.(i) in
      d.buf.(i) <- nop_task;
      d.head <- d.head + 1;
      Some t
    end
  in
  Mutex.unlock d.dlock;
  r

(* --- metrics and adaptive state ------------------------------------

   Registry metrics are bound at [create] (no-op registry = one branch
   per recording site). The adaptive chunk estimate is kept per *site*
   — a caller-supplied label naming the kind of work — because one pool
   serves workloads whose per-item cost spans six orders of magnitude
   (a Monte Carlo replication vs one columnar cell sweep); a single
   pooled estimate would missize every one of them. *)

type metrics = {
  obs : Mde_obs.t;
  obs_on : bool;
  domain_tasks : Mde_obs.Counter.t array;  (* index 0 = submitting domain *)
  domain_steals : Mde_obs.Counter.t array;
  m_batches : Mde_obs.Counter.t;
  m_seq : Mde_obs.Counter.t;
}

type site = {
  site_hist : Mde_obs.Histogram.t;  (* chunk wall seconds, labelled site=... *)
  site_chunk : Mde_obs.Gauge.t;  (* last adaptive chunk size chosen *)
  mutable per_item : float;  (* EWMA seconds per work item; 0. = unmeasured *)
}

type t = {
  mutex : Mutex.t;  (* batch bookkeeping + idle/wake protocol *)
  work_available : Condition.t;
  deques : deque array;  (* one per domain; index 0 = submitting caller *)
  tasks_queued : int Atomic.t;  (* pushed but not yet taken; sleep gate *)
  mutable closing : bool;
  mutable workers : unit Domain.t array;
  n_domains : int;
  (* Always-on plain counters for [stats]: each domain writes only its
     own slot, so the writes are disjoint and race-free. *)
  task_counts : int array;
  steal_counts : int array;
  mutable batches : int;
  mutable seq_batches : int;
  sites : (string, site) Hashtbl.t;
  sites_lock : Mutex.t;
  metrics : metrics;
}

(* --- taking and running tasks -------------------------------------- *)

let take_task pool i =
  let found =
    match pop_bottom pool.deques.(i) with
    | Some _ as t -> t
    | None ->
      let nd = pool.n_domains in
      let rec scan k =
        if k >= nd then None
        else
          match steal_top pool.deques.((i + k) mod nd) with
          | Some _ as t ->
            pool.steal_counts.(i) <- pool.steal_counts.(i) + 1;
            if pool.metrics.obs_on then
              Mde_obs.Counter.incr pool.metrics.domain_steals.(i);
            t
          | None -> scan (k + 1)
      in
      scan 1
  in
  (match found with
  | Some _ -> ignore (Atomic.fetch_and_add pool.tasks_queued (-1))
  | None -> ());
  found

let run_task pool i task =
  task ();
  pool.task_counts.(i) <- pool.task_counts.(i) + 1;
  if pool.metrics.obs_on then Mde_obs.Counter.incr pool.metrics.domain_tasks.(i)

(* A worker spins through its deque and the others'; with nothing to
   take it sleeps on [work_available]. The [tasks_queued] check and the
   wait happen under the pool mutex, and submitters bump the counter and
   broadcast under the same mutex, so a wakeup can never be missed. A
   closing pool drains every queued task before the worker exits. *)
let rec worker_loop pool i =
  match take_task pool i with
  | Some task ->
    run_task pool i task;
    worker_loop pool i
  | None ->
    Mutex.lock pool.mutex;
    let stop =
      if Atomic.get pool.tasks_queued > 0 then false
      else if pool.closing then true
      else begin
        Condition.wait pool.work_available pool.mutex;
        false
      end
    in
    Mutex.unlock pool.mutex;
    if not stop then begin
      Domain.cpu_relax ();
      worker_loop pool i
    end

(* --- lifecycle ------------------------------------------------------ *)

let create ?domains () =
  let n =
    match domains with
    | None -> Domain.recommended_domain_count ()
    | Some d -> d
  in
  if n < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let obs = Mde_obs.default () in
  let metrics =
    {
      obs;
      obs_on = Mde_obs.enabled obs;
      domain_tasks =
        Array.init n (fun i ->
            Mde_obs.counter obs ~help:"Pool chunks executed, by domain (0 = caller)"
              ~labels:[ ("domain", string_of_int i) ]
              "mde_pool_tasks_total");
      domain_steals =
        Array.init n (fun i ->
            Mde_obs.counter obs
              ~help:"Pool chunks stolen from another domain's deque, by thief"
              ~labels:[ ("domain", string_of_int i) ]
              "mde_pool_steals_total");
      m_batches =
        Mde_obs.counter obs ~help:"Batches fanned out over the pool"
          "mde_pool_batches_total";
      m_seq =
        Mde_obs.counter obs
          ~help:"Batches run sequentially on the caller (below crossover or 1 domain)"
          "mde_pool_seq_batches_total";
    }
  in
  let pool =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      deques = Array.init n (fun _ -> deque_create ());
      tasks_queued = Atomic.make 0;
      closing = false;
      workers = [||];
      n_domains = n;
      task_counts = Array.make n 0;
      steal_counts = Array.make n 0;
      batches = 0;
      seq_batches = 0;
      sites = Hashtbl.create 8;
      sites_lock = Mutex.create ();
      metrics;
    }
  in
  pool.workers <-
    Array.init (n - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let domains pool = pool.n_domains

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.closing then Mutex.unlock pool.mutex
  else begin
    pool.closing <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* The process-wide pools: spawned once per distinct size, reused by
   every later [shared] call, shut down at exit. This is what kills the
   spawn-per-call overhead in the bench and serving paths — a domain
   costs milliseconds to start, which used to be paid inside loops whose
   entire work was milliseconds. *)
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4
let shared_lock = Mutex.create ()
let shared_cleanup_installed = ref false

let shared ?domains () =
  let n =
    match domains with
    | None -> Domain.recommended_domain_count ()
    | Some d -> d
  in
  if n < 1 then invalid_arg "Pool.shared: domains must be >= 1";
  Mutex.lock shared_lock;
  if not !shared_cleanup_installed then begin
    shared_cleanup_installed := true;
    at_exit (fun () ->
        Mutex.lock shared_lock;
        let pools = Hashtbl.fold (fun _ p acc -> p :: acc) shared_pools [] in
        Hashtbl.reset shared_pools;
        Mutex.unlock shared_lock;
        List.iter shutdown pools)
  end;
  let pool =
    match Hashtbl.find_opt shared_pools n with
    | Some p when not p.closing -> p
    | _ ->
      let p = create ~domains:n () in
      Hashtbl.replace shared_pools n p;
      p
  in
  Mutex.unlock shared_lock;
  pool

(* --- adaptive chunking ---------------------------------------------- *)

(* Below this much *total* sequential work a fan-out cannot pay for its
   own dispatch (queue pushes, wakeups, cross-domain cache traffic), so
   the batch runs on the caller. *)
let crossover_seconds = 50e-6

(* Preferred wall time per chunk once the per-item cost is known: coarse
   enough that dispatch is noise, fine enough that a batch still splits
   across domains. *)
let target_chunk_seconds = 10e-3

(* Never choose chunks cheaper than this even when load balance asks for
   more splits — tiny chunks are how the old pool drowned in dispatch. *)
let min_chunk_seconds = 200e-6

let ewma_weight = 0.3

let find_site pool name =
  Mutex.lock pool.sites_lock;
  let s =
    match Hashtbl.find_opt pool.sites name with
    | Some s -> s
    | None ->
      let m = pool.metrics in
      let s =
        {
          site_hist =
            Mde_obs.histogram m.obs ~help:"Wall seconds per executed pool chunk"
              ~labels:[ ("site", name) ]
              "mde_pool_chunk_seconds";
          site_chunk =
            Mde_obs.gauge m.obs
              ~help:"Adaptive chunk size chosen for the site's last fan-out"
              ~labels:[ ("site", name) ]
              "mde_pool_chunk_size";
          per_item = 0.;
        }
      in
      Hashtbl.replace pool.sites name s;
      s
  in
  Mutex.unlock pool.sites_lock;
  s

(* Clock resolution can read a cheap batch as zero seconds; the 1ns/item
   floor keeps such a measurement meaningfully "known and tiny" rather
   than resetting the estimate to unmeasured. *)
let update_site pool s ~items ~seconds =
  if items > 0 then begin
    let sample = Float.max (seconds /. float_of_int items) 1e-9 in
    Mutex.lock pool.sites_lock;
    s.per_item <-
      (if s.per_item <= 0. then sample
       else ((1. -. ewma_weight) *. s.per_item) +. (ewma_weight *. sample));
    Mutex.unlock pool.sites_lock
  end

let default_chunk pool n =
  (* Unmeasured site: aim for ~4 chunks per domain — fine enough to
     balance uneven work, coarse enough to keep dispatch negligible. *)
  max 1 ((n + (4 * pool.n_domains) - 1) / (4 * pool.n_domains))

let adaptive_chunk pool s n =
  if s.per_item <= 0. then default_chunk pool n
  else begin
    let by_target = int_of_float (target_chunk_seconds /. s.per_item) in
    let floor_cost = int_of_float (ceil (min_chunk_seconds /. s.per_item)) in
    let balance_cap = max 1 (n / (2 * pool.n_domains)) in
    max 1 (min n (max (min by_target balance_cap) floor_cost))
  end

let estimated_item_seconds pool ~site =
  Mutex.lock pool.sites_lock;
  let v =
    match Hashtbl.find_opt pool.sites site with
    | Some s when s.per_item > 0. -> Some s.per_item
    | _ -> None
  in
  Mutex.unlock pool.sites_lock;
  v

(* --- batch execution ------------------------------------------------ *)

(* Run [run_chunk lo hi] for each chunk of [0, n), spread round-robin
   over the per-domain deques. The submitting domain takes part: while
   its batch is outstanding it executes tasks (its own deque first, then
   steals) and only sleeps when nothing is left to take. Exactly one
   exception — the first, in completion order — survives the batch and
   is re-raised on the caller once every chunk has finished, so a
   failing batch never leaves tasks behind to corrupt a later one. *)
let parallel_chunks pool s ~n ~chunk run_chunk =
  let n_chunks = (n + chunk - 1) / chunk in
  let remaining = ref n_chunks in
  let error = ref None in
  let work_seconds = ref 0. in
  let batch_done = Condition.create () in
  let task_for c () =
    let t0 = Mde_obs.Clock.wall () in
    (try run_chunk (c * chunk) (min n ((c + 1) * chunk))
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock pool.mutex;
       if !error = None then error := Some (e, bt);
       Mutex.unlock pool.mutex);
    let dt = Mde_obs.Clock.wall () -. t0 in
    if pool.metrics.obs_on then Mde_obs.Histogram.observe s.site_hist dt;
    Mutex.lock pool.mutex;
    work_seconds := !work_seconds +. dt;
    decr remaining;
    if !remaining = 0 then Condition.broadcast batch_done;
    Mutex.unlock pool.mutex
  in
  Mutex.lock pool.mutex;
  if pool.closing then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool: submitted to a shut-down pool"
  end;
  pool.batches <- pool.batches + 1;
  if pool.metrics.obs_on then Mde_obs.Counter.incr pool.metrics.m_batches;
  for c = 0 to n_chunks - 1 do
    push_bottom pool.deques.(c mod pool.n_domains) (task_for c)
  done;
  ignore (Atomic.fetch_and_add pool.tasks_queued n_chunks);
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  let rec help () =
    match take_task pool 0 with
    | Some task ->
      run_task pool 0 task;
      help ()
    | None ->
      Mutex.lock pool.mutex;
      while !remaining > 0 do
        Condition.wait batch_done pool.mutex
      done;
      Mutex.unlock pool.mutex
  in
  help ();
  update_site pool s ~items:n ~seconds:!work_seconds;
  match !error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_init pool ?(site = "default") ?chunk n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  (* Validate before any fast-path branch: ~chunk:0 must be rejected on
     a 1-domain pool exactly as on a multi-domain one. *)
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.parallel_init: chunk must be >= 1"
  | _ -> ());
  if pool.closing then invalid_arg "Pool: submitted to a shut-down pool";
  if n = 0 then [||]
  else begin
    let s = find_site pool site in
    let sequential () =
      let t0 = Mde_obs.Clock.wall () in
      let out = Array.init n f in
      let dt = Mde_obs.Clock.wall () -. t0 in
      Mutex.lock pool.mutex;
      pool.seq_batches <- pool.seq_batches + 1;
      Mutex.unlock pool.mutex;
      if pool.metrics.obs_on then begin
        Mde_obs.Counter.incr pool.metrics.m_seq;
        (* The whole batch ran as one caller-side chunk; record it so
           chunk latency is observable even on 1-domain pools. *)
        Mde_obs.Histogram.observe s.site_hist dt
      end;
      update_site pool s ~items:n ~seconds:dt;
      out
    in
    if pool.n_domains <= 1 || n = 1 then sequential ()
    else
      match chunk with
      | None when s.per_item > 0. && float_of_int n *. s.per_item < crossover_seconds
        ->
        sequential ()
      | _ ->
        let chunk =
          match chunk with Some c -> c | None -> adaptive_chunk pool s n
        in
        if pool.metrics.obs_on then
          Mde_obs.Gauge.set s.site_chunk (float_of_int chunk);
        (* Unboxed result writing: evaluation order of [f] is unspecified
           by contract, so the caller computes [f 0] up front to seed the
           result array, and every chunk writes its slots directly — no
           option boxing, no unwrap pass. Slot writes are disjoint across
           chunks and published to the caller by batch completion. *)
        let first = f 0 in
        let out = Array.make n first in
        parallel_chunks pool s ~n ~chunk (fun lo hi ->
            for i = Stdlib.max lo 1 to hi - 1 do
              out.(i) <- f i
            done);
        out
  end

let parallel_iter pool ?(site = "default") ?chunk n f =
  if n < 0 then invalid_arg "Pool.parallel_iter: negative length";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.parallel_iter: chunk must be >= 1"
  | _ -> ());
  if pool.closing then invalid_arg "Pool: submitted to a shut-down pool";
  if n > 0 then begin
    let s = find_site pool site in
    let sequential () =
      let t0 = Mde_obs.Clock.wall () in
      for i = 0 to n - 1 do
        f i
      done;
      let dt = Mde_obs.Clock.wall () -. t0 in
      Mutex.lock pool.mutex;
      pool.seq_batches <- pool.seq_batches + 1;
      Mutex.unlock pool.mutex;
      if pool.metrics.obs_on then begin
        Mde_obs.Counter.incr pool.metrics.m_seq;
        Mde_obs.Histogram.observe s.site_hist dt
      end;
      update_site pool s ~items:n ~seconds:dt
    in
    if pool.n_domains <= 1 || n = 1 then sequential ()
    else
      match chunk with
      | None when s.per_item > 0. && float_of_int n *. s.per_item < crossover_seconds
        ->
        sequential ()
      | _ ->
        let chunk =
          match chunk with Some c -> c | None -> adaptive_chunk pool s n
        in
        if pool.metrics.obs_on then
          Mde_obs.Gauge.set s.site_chunk (float_of_int chunk);
        (* Pure side-effect fan-out: no result array is allocated — the
           caller's [f] writes wherever it writes. This is the fill shape
           the columnar engine uses ([flags.(i) <- ...], bigarray slots),
           which used to pay a throwaway [unit array] per pooled sweep. *)
        parallel_chunks pool s ~n ~chunk (fun lo hi ->
            for i = lo to hi - 1 do
              f i
            done)
  end

let parallel_map pool ?site ?chunk f a =
  parallel_init pool ?site ?chunk (Array.length a) (fun i -> f a.(i))

let map ?pool ?site f a =
  match pool with None -> Array.map f a | Some p -> parallel_map p ?site f a

let init ?pool ?site n f =
  match pool with None -> Array.init n f | Some p -> parallel_init p ?site n f

let iter ?pool ?site n f =
  match pool with
  | None ->
    for i = 0 to n - 1 do
      f i
    done
  | Some p -> parallel_iter p ?site n f

(* --- introspection -------------------------------------------------- *)

type stats = {
  stat_domains : int;
  batches : int;
  seq_batches : int;
  tasks : int array;
  steals : int array;
}

let stats pool =
  Mutex.lock pool.mutex;
  let s =
    {
      stat_domains = pool.n_domains;
      batches = pool.batches;
      seq_batches = pool.seq_batches;
      tasks = Array.copy pool.task_counts;
      steals = Array.copy pool.steal_counts;
    }
  in
  Mutex.unlock pool.mutex;
  s
