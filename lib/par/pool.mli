(** A fixed pool of worker domains for data-parallel array operations.

    This is the execution substrate for the replication-heavy layers:
    Monte Carlo repetitions ({!Mde_mcdb}), the map phase of MapReduce
    jobs ({!Mde_mapred}), and the two-stage pilot ({!Mde_composite}) all
    fan independent units of work out over the pool.

    Determinism contract: the pool never changes {e what} is computed,
    only {e where}. Callers must make each work item self-contained — in
    particular, give every item its own RNG stream (via
    {!Mde_prob.Rng.split_n}) {e before} submitting — and the pool
    guarantees result [i] of {!parallel_map} is exactly [f a.(i)], so a
    parallel run is bit-identical to the sequential run of the same
    code. All entry points take the pool optionally and default to
    plain sequential execution, so existing call sites are unchanged.

    Observability: {!create} reads {!Mde_obs.default} and, when a live
    registry is installed, records per-domain task counts
    ([mde_pool_tasks_total{domain=...}], domain 0 being the submitting
    caller) and per-chunk wall latency ([mde_pool_chunk_seconds]).
    Metrics never touch the work items, so instrumented runs stay
    bit-identical; with the default no-op registry the recording sites
    cost one branch. *)

type t
(** A pool of worker domains plus the calling domain. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool of [domains] total domains:
    [domains - 1] spawned workers plus the submitting domain, which
    joins in whenever it waits on a batch. [domains] defaults to
    [Domain.recommended_domain_count ()]; [domains = 1] spawns nothing
    and runs everything sequentially on the caller. Raises
    [Invalid_argument] if [domains < 1]. *)

val domains : t -> int
(** Total parallelism (workers + caller). *)

val shutdown : t -> unit
(** Drain outstanding work, stop and join the worker domains.
    Idempotent. Submitting to a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] brackets [create]/[shutdown] around [f], shutting the
    pool down even if [f] raises. *)

val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f a] is [Array.map f a] with the applications of
    [f] distributed over the pool in contiguous chunks of [chunk]
    elements (default: enough chunks for load balance, about 4 per
    domain). If any application raises, the first exception (in
    completion order) is re-raised on the caller after the batch
    drains; the pool remains usable. *)

val parallel_init : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is [Array.init n f], distributed as in
    {!parallel_map}. Unlike [Array.init], the evaluation order of [f]
    is unspecified — each call must depend only on its index. *)

val map : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?pool f a]: {!parallel_map} when [pool] is given, [Array.map]
    otherwise — the form the library layers use for their [?pool]
    pass-through arguments. *)

val init : ?pool:t -> int -> (int -> 'a) -> 'a array
(** [init ?pool n f]: {!parallel_init} or [Array.init]. *)
