(** A persistent work-stealing pool of worker domains for data-parallel
    array operations.

    This is the execution substrate for the replication-heavy layers:
    Monte Carlo repetitions ({!Mde_mcdb}), the map phase of MapReduce
    jobs ({!Mde_mapred}), and the two-stage pilot ({!Mde_composite}) all
    fan independent units of work out over the pool.

    Each domain owns a deque: the owner pushes and pops at the bottom
    (LIFO, cache-warm work first) while idle domains steal from the top
    (FIFO, coldest work migrates). Domains are spawned once — use
    {!shared} for a process-wide pool reused across calls — and batches
    are split into chunks sized adaptively from the measured per-item
    latency of each call {e site}; batches too small to pay for a
    fan-out run sequentially on the caller instead.

    Determinism contract: the pool never changes {e what} is computed,
    only {e where}. Callers must make each work item self-contained — in
    particular, give every item its own RNG stream (via
    {!Mde_prob.Rng.split_n}) {e before} submitting — and the pool
    guarantees result [i] of {!parallel_map} is exactly [f a.(i)], so a
    parallel run is bit-identical to the sequential run of the same
    code. All entry points take the pool optionally and default to
    plain sequential execution, so existing call sites are unchanged.

    Observability: {!create} reads {!Mde_obs.default} and, when a live
    registry is installed, records per-domain task and steal counts
    ([mde_pool_tasks_total{domain=...}] and
    [mde_pool_steals_total{domain=...}], domain 0 being the submitting
    caller), batch counts ([mde_pool_batches_total],
    [mde_pool_seq_batches_total]), per-chunk wall latency by site
    ([mde_pool_chunk_seconds{site=...}]) and the last adaptive chunk
    size ([mde_pool_chunk_size{site=...}]). Metrics never touch the
    work items, so instrumented runs stay bit-identical; with the
    default no-op registry the recording sites cost one branch.
    {!stats} exposes always-on plain counters independent of the
    registry. *)

type t
(** A pool of worker domains plus the calling domain. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] starts a pool of [domains] total domains:
    [domains - 1] spawned workers plus the submitting domain, which
    joins in whenever it waits on a batch. [domains] defaults to
    [Domain.recommended_domain_count ()]; [domains = 1] spawns nothing
    and runs everything sequentially on the caller. Raises
    [Invalid_argument] if [domains < 1]. *)

val shared : ?domains:int -> unit -> t
(** [shared ~domains ()] returns a process-wide pool of that size,
    creating it on first use and reusing it afterwards — the cure for
    paths that used to pay a domain spawn per call. Shared pools are
    shut down via [at_exit]; callers must {e not} {!shutdown} them.
    Distinct sizes get distinct pools. Raises [Invalid_argument] if
    [domains < 1]. *)

val domains : t -> int
(** Total parallelism (workers + caller). *)

val shutdown : t -> unit
(** Drain outstanding work, stop and join the worker domains.
    Idempotent. Submitting to a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] brackets [create]/[shutdown] around [f], shutting the
    pool down even if [f] raises. Prefer {!shared} in long-lived or
    repeatedly-invoked paths: a domain spawn costs milliseconds. *)

val parallel_map :
  t -> ?site:string -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f a] is [Array.map f a] with the applications of
    [f] distributed over the pool in contiguous chunks. [chunk] forces
    the chunk size; otherwise it is sized adaptively from the measured
    per-item latency of [site] (a label naming the kind of work,
    default ["default"]) so each chunk lands near 10ms of work, and
    batches whose total estimated work is below the fan-out crossover
    run sequentially on the caller. If any application raises, the
    first exception (in completion order) is re-raised on the caller
    after the batch drains; the pool remains usable. Raises
    [Invalid_argument] if [chunk < 1], on any pool size. *)

val parallel_init :
  t -> ?site:string -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is [Array.init n f], distributed as in
    {!parallel_map}. Unlike [Array.init], the evaluation order of [f]
    is unspecified — each call must depend only on its index. Results
    are written directly into the final array (no boxing pass). *)

val parallel_iter : t -> ?site:string -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_iter pool n f] runs [f i] for every [i] in [[0, n)],
    distributed as in {!parallel_init} but with no result array — the
    fan-out for pure side-effect sweeps (chunked fills of preallocated
    storage). Evaluation order is unspecified; each call must touch only
    state owned by its index. Exceptions and validation behave exactly
    as {!parallel_map}. *)

val map : ?pool:t -> ?site:string -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?pool f a]: {!parallel_map} when [pool] is given, [Array.map]
    otherwise — the form the library layers use for their [?pool]
    pass-through arguments. *)

val init : ?pool:t -> ?site:string -> int -> (int -> 'a) -> 'a array
(** [init ?pool n f]: {!parallel_init} or [Array.init]. *)

val iter : ?pool:t -> ?site:string -> int -> (int -> unit) -> unit
(** [iter ?pool n f]: {!parallel_iter} or a plain [for] loop. *)

val estimated_item_seconds : t -> site:string -> float option
(** The pool's current per-item latency estimate for [site] (EWMA of
    measured chunk timings), or [None] before the first measured
    batch. Exposed for diagnostics and benchmarks. *)

type stats = {
  stat_domains : int;  (** total parallelism of the pool *)
  batches : int;  (** batches fanned out over the deques *)
  seq_batches : int;
      (** batches run sequentially on the caller (1-domain pool, single
          item, or below the measured crossover) *)
  tasks : int array;  (** chunks executed, per domain (0 = caller) *)
  steals : int array;  (** chunks stolen from another deque, per thief *)
}

val stats : t -> stats
(** A snapshot of the pool's always-on counters, independent of the
    {!Mde_obs} registry. *)
