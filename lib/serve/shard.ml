type shed_reason = Shard_queue_full | Front_high_water
type shed = { shard : int; reason : shed_reason; depth : int; limit : int }

(* What kind of engine answers a registered name — drives the
   federation catalog's static preference and compatibility check. *)
type tag = Tmcdb | Tbundle | Tchain | Tcomposite

(* Bundle plans are statically preferred: one fused columnar sweep
   versus one full database realization per repetition. *)
let rank_of = function Tbundle -> 0 | Tmcdb | Tchain | Tcomposite -> 1
let group_of = function Tmcdb | Tbundle -> `Sim | Tchain -> `Chain | Tcomposite -> `Comp

type backend = {
  b_name : string;
  b_rank : int;
  mutable b_runs : int;  (* executed (non-degraded cache misses) observed *)
  mutable b_seconds : float;  (* their summed serving latency *)
}

type fed = { primary : string; backends : backend list }

type metrics = {
  m_routed : Mde_obs.Counter.t array;
  m_shed : Mde_obs.Counter.t array;
  m_depth : Mde_obs.Gauge.t array;
  m_outstanding : Mde_obs.Gauge.t;
  m_imbalance : Mde_obs.Gauge.t;
}

type t = {
  servers : Server.t array;
  router : Router.t;
  queue_capacity : int;  (* each shard's scheduler high-water mark *)
  high_water : int;  (* aggregate outstanding cap across the front *)
  tags : (string, tag * int) Hashtbl.t;  (* name -> engine tag, registration order *)
  federated : (string, fed) Hashtbl.t;
  inflight : (int * int, int * backend option) Hashtbl.t;
      (* (shard, server id) -> front id + the backend to charge *)
  mutable next_id : int;
  mutable outstanding : int;
  depth : int array;  (* outstanding per shard *)
  routed : int array;
  shed_count : int array;
  mutable shed_front : int;
  metrics : metrics;
}

let create ?pool ?impl ?(clock = Mde_obs.Clock.wall) ?obs ?cache_capacity ?cache_ttl
    ?(scheduler = Scheduler.default_config) ?admission ?high_water ~shards () =
  let router = Router.create ~shards in
  let high_water =
    match high_water with Some hw -> hw | None -> shards * scheduler.Scheduler.queue_capacity
  in
  if high_water < 1 then invalid_arg "Shard.create: high_water must be >= 1";
  let obs = match obs with Some o -> o | None -> Mde_obs.default () in
  let servers =
    Array.init shards (fun _ ->
        Server.create ?pool ?impl ~clock ~obs ?cache_capacity ?cache_ttl ~scheduler
          ?admission ())
  in
  let shard_label i = [ ("shard", string_of_int i) ] in
  {
    servers;
    router;
    queue_capacity = scheduler.Scheduler.queue_capacity;
    high_water;
    tags = Hashtbl.create 8;
    federated = Hashtbl.create 4;
    inflight = Hashtbl.create 64;
    next_id = 0;
    outstanding = 0;
    depth = Array.make shards 0;
    routed = Array.make shards 0;
    shed_count = Array.make shards 0;
    shed_front = 0;
    metrics =
      {
        m_routed =
          Array.init shards (fun i ->
              Mde_obs.counter obs ~help:"Requests routed to and accepted by this shard"
                ~labels:(shard_label i) "mde_shard_routed_total");
        m_shed =
          Array.init shards (fun i ->
              Mde_obs.counter obs
                ~help:"Requests shed at admission, charged to the routed shard"
                ~labels:(shard_label i) "mde_shard_shed_total");
        m_depth =
          Array.init shards (fun i ->
              Mde_obs.gauge obs ~help:"Accepted but undelivered requests on this shard"
                ~labels:(shard_label i) "mde_shard_depth");
        m_outstanding =
          Mde_obs.gauge obs ~help:"Accepted but undelivered requests across the front"
            "mde_shard_outstanding";
        m_imbalance =
          Mde_obs.gauge obs
            ~help:"Max/mean accepted submissions across shards (1 = balanced)"
            "mde_shard_imbalance";
      };
  }

let shards t = Array.length t.servers
let router t = t.router

let imbalance t =
  let total = Array.fold_left ( + ) 0 t.routed in
  if total = 0 then nan
  else
    let mean = float_of_int total /. float_of_int (shards t) in
    float_of_int (Array.fold_left Stdlib.max 0 t.routed) /. mean

(* --- registration --- *)

let check_fresh t name =
  if Hashtbl.mem t.federated name then
    invalid_arg (Printf.sprintf "Shard: %S is already a federated name" name)

let register_all t name tag register =
  check_fresh t name;
  (* The first shard's [Server.register] raises on duplicates before any
     state changes; the rest then cannot fail. *)
  Array.iter register t.servers;
  Hashtbl.replace t.tags name (tag, Hashtbl.length t.tags)

let register_mcdb t ~name ~query db =
  register_all t name Tmcdb (fun s -> Server.register_mcdb s ~name ~query db)

let register_mcdb_plan t ~name ~table ~plan db =
  register_all t name Tbundle (fun s -> Server.register_mcdb_plan s ~name ~table ~plan db)

let register_chain t ~name ~query chain =
  register_all t name Tchain (fun s -> Server.register_chain s ~name ~query chain)

let register_composite t ~name stages =
  register_all t name Tcomposite (fun s -> Server.register_composite s ~name stages)

let federate t ~name ~backends =
  check_fresh t name;
  if Hashtbl.mem t.tags name then
    invalid_arg (Printf.sprintf "Shard: %S is already a registered backend" name);
  if backends = [] then invalid_arg "Shard.federate: empty backend list";
  let resolved =
    List.map
      (fun b ->
        match Hashtbl.find_opt t.tags b with
        | Some (tag, order) -> (b, tag, order)
        | None -> invalid_arg (Printf.sprintf "Shard.federate: unknown backend %S" b))
      backends
  in
  (match resolved with
  | (_, first, _) :: rest ->
    List.iter
      (fun (b, tag, _) ->
        if group_of tag <> group_of first then
          invalid_arg
            (Printf.sprintf "Shard.federate: backend %S cannot answer the same queries" b))
      rest
  | [] -> assert false);
  let backends =
    List.map
      (fun (b, tag, order) -> ((rank_of tag, order), { b_name = b; b_rank = rank_of tag; b_runs = 0; b_seconds = 0. }))
      resolved
    |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
    |> List.map snd
  in
  Hashtbl.replace t.federated name
    { primary = (List.hd backends).b_name; backends }

(* Probe each backend once in preference order, then settle on the
   lowest observed mean latency (ties break toward the preference
   order, which the sorted list encodes). *)
let choose fed =
  match List.find_opt (fun b -> b.b_runs = 0) fed.backends with
  | Some b -> b
  | None ->
    List.fold_left
      (fun best b ->
        if b.b_seconds /. float_of_int b.b_runs
           < best.b_seconds /. float_of_int best.b_runs
        then b
        else best)
      (List.hd fed.backends) (List.tl fed.backends)

let resolve t (request : Server.request) =
  match Hashtbl.find_opt t.federated request.Server.model with
  | None -> (request, None)
  | Some fed ->
    let b = choose fed in
    ({ request with Server.model = b.b_name }, Some b)

let backend_for t request = (fst (resolve t request)).Server.model

(* The routing fingerprint of a federated request comes from its
   statically-preferred backend, so the shard placement of a logical
   query never moves when the cost-based catalog changes backends. *)
let fingerprint t (request : Server.request) =
  match Hashtbl.find_opt t.federated request.Server.model with
  | None -> Server.fingerprint t.servers.(0) request
  | Some fed -> Server.fingerprint t.servers.(0) { request with Server.model = fed.primary }

let shard_of t request = Router.route t.router (fingerprint t request)

(* --- serving --- *)

let set_gauges t shard =
  Mde_obs.Gauge.set t.metrics.m_depth.(shard) (float_of_int t.depth.(shard));
  Mde_obs.Gauge.set t.metrics.m_outstanding (float_of_int t.outstanding);
  let im = imbalance t in
  if Float.is_finite im then Mde_obs.Gauge.set t.metrics.m_imbalance im

let shed_at t shard reason ~depth ~limit =
  t.shed_count.(shard) <- t.shed_count.(shard) + 1;
  if reason = Front_high_water then t.shed_front <- t.shed_front + 1;
  Mde_obs.Counter.incr t.metrics.m_shed.(shard);
  `Shed { shard; reason; depth; limit }

let submit t request =
  let fp = fingerprint t request in
  let shard = Router.route t.router fp in
  let resolved, backend = resolve t request in
  if t.outstanding >= t.high_water then
    shed_at t shard Front_high_water ~depth:t.outstanding ~limit:t.high_water
  else
    match Server.submit t.servers.(shard) resolved with
    | `Rejected ->
      shed_at t shard Shard_queue_full ~depth:t.queue_capacity ~limit:t.queue_capacity
    | `Queued sid ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.inflight (shard, sid) (id, backend);
      t.outstanding <- t.outstanding + 1;
      t.depth.(shard) <- t.depth.(shard) + 1;
      t.routed.(shard) <- t.routed.(shard) + 1;
      Mde_obs.Counter.incr t.metrics.m_routed.(shard);
      set_gauges t shard;
      `Queued id

let deliver t per_server =
  let out = ref [] in
  Array.iteri
    (fun shard completions ->
      List.iter
        (fun (sid, (resp : Server.response)) ->
          let id, backend =
            match Hashtbl.find_opt t.inflight (shard, sid) with
            | Some v -> v
            | None -> assert false
          in
          Hashtbl.remove t.inflight (shard, sid);
          t.outstanding <- t.outstanding - 1;
          t.depth.(shard) <- t.depth.(shard) - 1;
          (* Only real executions inform the federation cost estimate:
             a cache hit's latency measures the probe, not the backend. *)
          (match backend with
          | Some b when resp.Server.cache = Server.Miss && not resp.Server.degraded ->
            b.b_runs <- b.b_runs + 1;
            b.b_seconds <- b.b_seconds +. resp.Server.latency
          | _ -> ());
          out := (id, resp) :: !out)
        completions;
      set_gauges t shard)
    per_server;
  List.sort (fun (a, _) (b, _) -> compare a b) !out

let drain t = deliver t (Array.map Server.drain t.servers)
let shutdown t = deliver t (Array.map Server.shutdown t.servers)

let serve t request =
  match submit t request with
  | `Shed s -> `Shed s
  | `Queued id -> (
    match List.assoc_opt id (drain t) with
    | Some resp -> `Served resp
    | None -> assert false)

(* --- progressive-refinement hooks --- *)

(* Like routing, refinement keys come from the statically-preferred
   primary of a federated name, so a session's sample store never moves
   when the cost-based catalog changes backends; executions may use any
   backend because federated backends are bit-identical by contract. *)
let refinement_key t (request : Server.request) =
  match Hashtbl.find_opt t.federated request.Server.model with
  | None -> Server.refinement_key t.servers.(0) request
  | Some fed ->
    Server.refinement_key t.servers.(0) { request with Server.model = fed.primary }

let sample_batch t request ~lo ~hi =
  let resolved, _ = resolve t request in
  Server.sample_batch t.servers.(shard_of t request) resolved ~lo ~hi

type stats = {
  routed : int array;
  shed : int array;
  shed_front : int;
  outstanding : int;
  servers : Server.stats array;
}

let stats (t : t) =
  {
    routed = Array.copy t.routed;
    shed = Array.copy t.shed_count;
    shed_front = t.shed_front;
    outstanding = t.outstanding;
    servers = Array.map Server.stats t.servers;
  }
