(** The query-serving façade: typed requests over registered models,
    dispatched through {!Scheduler} (bounded queue, micro-batching,
    deadlines) and {!Cache} (LRU+TTL with cost-aware admission).

    Request lifecycle: [submit] validates the request, computes its
    canonical fingerprint and probes the cache — a hit completes
    immediately; a miss is enqueued (or rejected under backpressure).
    [drain] executes queued work in compatible micro-batches over the
    domain pool, updates per-class cost/variance/popularity statistics,
    and admits fresh results into the cache when the g(α) theory says the
    class pays off ({!Cache.pays_off}).

    Determinism contract: a served response carries exactly the value the
    direct library call produces for the same seed —
    [Mde_mcdb.Database.estimate], [Mde_mcdb.Database.monte_carlo] +
    [Estimator], [Mde_simsql.Chain.monte_carlo], or
    [Mde_composite.Result_cache.estimate] — whether it was computed cold,
    batched with other requests, run on a pool, or returned from cache.
    The one sanctioned divergence is deadline degradation: a degraded
    response equals the direct call with [reps_executed] (< requested)
    replications, is flagged [degraded = true], and is never admitted to
    the cache (so a later full-budget request cannot observe it). *)

type kind =
  | Mcdb_mean of { reps : int }
      (** mean + 95% CI of an MCDB query over [reps] Monte Carlo
          replications ({!Mde_mcdb.Database.estimate}) *)
  | Mcdb_tail of { reps : int; p : float }
      (** MCDB-R risk query: extreme p-quantile of the query-result
          distribution, with its order-statistic CI *)
  | Chain_mean of { steps : int; reps : int }
      (** mean + CI of a SimSQL chain query at version D[steps] over
          [reps] independent chain realizations *)
  | Composite_estimate of { n : int; alpha : float }
      (** two-stage RC estimate ({!Mde_composite.Result_cache.estimate}) *)

type request = {
  model : string;  (** a name registered below *)
  kind : kind;
  seed : int;  (** the RNG seed the direct library call would use *)
  deadline : float option;  (** relative seconds; see deadline contract *)
}

type cache_status = Hit | Miss

type response = {
  value : float;
  ci95 : (float * float) option;  (** [None] for composite estimates *)
  reps_requested : int;
  reps_executed : int;  (** < requested iff [degraded] *)
  degraded : bool;
  cache : cache_status;
  latency : float;  (** submission → availability, in clock units *)
}

type admission =
  | Admit_all
  | Cost_aware of { min_gain : float; warmup : int }
      (** admit a class's results only while fewer than [warmup]
          executions have been observed or once
          {!Cache.pays_off}[ ~min_gain] holds on its observed
          statistics *)

type t

val create :
  ?pool:Mde_par.Pool.t ->
  ?impl:Mde_relational.Impl.t ->
  ?clock:(unit -> float) ->
  ?obs:Mde_obs.t ->
  ?cache_capacity:int ->
  ?cache_ttl:float ->
  ?scheduler:Scheduler.config ->
  ?admission:admission ->
  unit ->
  t
(** [admission] defaults to [Cost_aware { min_gain = 1.0 +. 1e-9;
    warmup = 3 }]. [impl] selects the execution engine for bundle-plan
    models ({!Mde_relational.Impl.t}, default [`Kernel]); the kernel and
    interpreter are bit-identical, so it only changes cost.
    [clock] (default {!Mde_obs.Clock.wall}) is shared by
    the cache, the scheduler and the latency accounting; the wall-clock
    default means reported latencies include queueing and sleeping, which
    the previous [Sys.time] (CPU seconds) default silently excluded.
    [obs] (default {!Mde_obs.default}) is handed to the cache and
    scheduler and additionally registers per-request-class latency
    histograms ([mde_serve_latency_seconds{class=...}]), a degraded
    counter ([mde_serve_degraded_total]) and a cache-served counter
    ([mde_serve_cache_served_total]). *)

val register_mcdb :
  t -> name:string -> query:(Mde_relational.Catalog.t -> float) -> Mde_mcdb.Database.t -> unit
(** Serve [Mcdb_mean]/[Mcdb_tail] requests against this database. The
    query closure is identified by [name]; the database contributes
    {!Mde_mcdb.Database.fingerprint} to the cache key. *)

val register_mcdb_plan :
  t ->
  name:string ->
  table:string ->
  plan:Mde_mcdb.Bundle.plan ->
  Mde_mcdb.Database.t ->
  unit
(** Serve [Mcdb_mean]/[Mcdb_tail] requests through the columnar
    tuple-bundle engine ({!Mde_mcdb.Database.plan_samples}): one VG sweep
    builds the bundle, one fused pass runs the plan, versus one full
    database realization per repetition for {!register_mcdb}. Samples are
    bit-identical to the naive path for the same seed, so the two
    registrations answer identically — only the execution cost differs.
    The plan must aggregate into a single global group and name at least
    one aggregate (its first aggregate is the served value), and [table]
    must be a row-stable stochastic table of the database; violations
    raise [Invalid_argument] here or at execution. The plan contributes
    {!Mde_mcdb.Bundle.plan_fingerprint} to the cache key. *)

val register_chain :
  t -> name:string -> query:(Mde_simsql.Chain.state -> float) -> Mde_simsql.Chain.t -> unit

val register_composite :
  t -> name:string -> 'a Mde_composite.Result_cache.two_stage -> unit

val fingerprint : t -> request -> string
(** The canonical cache key: model fingerprint + kind + every parameter +
    seed. Distinct parameters give distinct fingerprints. Raises
    [Invalid_argument] on an unregistered model or a kind mismatched to
    the registered model. *)

val units_of : kind -> int
(** The request's total replication (or composite [n]) budget. *)

val floor_units : kind -> int
(** Smallest replication count the kind's estimator accepts — the
    degradation floor, and the first point a progressive session can
    emit an estimate at (2 for means and composites; ⌈1/min(p,1−p)⌉ for
    tail quantiles). *)

(** {2 Progressive-refinement hooks}

    What {!Session} builds on: replication streams are positional
    (stream [r] of a request depends only on the request seed and [r]),
    so an estimate over replications 0..n−1 can be grown one incremental
    batch at a time and still land, at convergence, on exactly the bits
    the one-shot execution produces. *)

val refinement_key : t -> request -> string
(** Identifies the request's replication {e stream}: model fingerprint +
    kind + seed + every parameter {e except} replication counts. Two
    requests with the same key and different rep budgets are prefixes of
    one another's sample sequences, so a session shares one growing
    sample store between them. Raises [Invalid_argument] like
    {!fingerprint}. *)

val sample_batch : t -> request -> lo:int -> hi:int -> float array
(** The per-replication query samples for stream indices [lo..hi-1] —
    bit-identical to elements [lo..hi-1] of the sample array any
    one-shot execution of the same model/kind/seed draws at a total
    ≥ [hi]. Runs immediately on the caller (through the scheduler's pool
    when it has one — pooled and sequential batches are bit-identical),
    bypassing queue, cache and class accounting: sessions do their own
    budget bookkeeping. Raises [Invalid_argument] on malformed requests,
    [lo < 0], [hi <= lo], or a [Composite_estimate] request (two-stage
    estimates consume their RNG sequentially and have no positional
    streams; sessions refine those by re-serving at increasing [n]). *)

val submit : t -> request -> [ `Queued of int | `Rejected ]
(** Validate, probe the cache, and either complete immediately (cache
    hit — the response is delivered by the next {!drain}) or enqueue.
    [`Rejected] is scheduler backpressure: queue at high-water mark.
    Raises [Invalid_argument] on malformed requests (unknown model,
    [reps < 2], [p] outside (0,1), [alpha] outside (0,1], negative
    deadline). *)

val drain : t -> (int * response) list
(** Execute queued work and deliver every completed response (including
    pending cache hits), in submission order. *)

val serve : t -> request -> [ `Served of response | `Rejected ]
(** [submit] + [drain] for a single request. *)

val shutdown : t -> (int * response) list
(** Close the server's scheduler ({!Scheduler.shutdown}) and deliver
    every response that is already available — pending cache hits plus
    completions a failed drain banked — without executing queued work
    (which is dropped and counted as abandoned). Call this instead of
    dropping a server on the floor after a drain raised: executed work
    is never silently lost. Idempotent; a later {!submit} that misses
    the cache raises [Invalid_argument]. *)

type stats = {
  served : int;
  rejected : int;
  degraded : int;
  cache : Cache.counters;
  scheduler : Scheduler.counters;
}

val stats : t -> stats
