module Rc = Mde_composite.Result_cache
module Est = Mde_mcdb.Estimator
module Database = Mde_mcdb.Database
module Bundle = Mde_mcdb.Bundle
module Chain = Mde_simsql.Chain
module Rng = Mde_prob.Rng

type kind =
  | Mcdb_mean of { reps : int }
  | Mcdb_tail of { reps : int; p : float }
  | Chain_mean of { steps : int; reps : int }
  | Composite_estimate of { n : int; alpha : float }

type request = { model : string; kind : kind; seed : int; deadline : float option }
type cache_status = Hit | Miss

type response = {
  value : float;
  ci95 : (float * float) option;
  reps_requested : int;
  reps_executed : int;
  degraded : bool;
  cache : cache_status;
  latency : float;
}

type admission = Admit_all | Cost_aware of { min_gain : float; warmup : int }

type model =
  | Mcdb of { db : Database.t; query : Mde_relational.Catalog.t -> float }
  | Bundle_model of { db : Database.t; table : string; plan : Bundle.plan }
  | Chain_model of { chain : Chain.t; query : Chain.state -> float }
  | Composite : 'a Rc.two_stage -> model

(* Per-query-class accounting: execution cost (for deadline budgets and
   the c1 of admission), probe cost (c2), result variance (V1, by
   Welford) and exact-repeat popularity (drives V2). Mutated only on the
   caller domain — work closures read a snapshot taken at submission. *)
type class_info = {
  mutable requests : int;
  mutable repeats : int;
  mutable executions : int;
  mutable exec_seconds : float;
  mutable exec_units : int;
  mutable probes : int;
  mutable probe_seconds : float;
  mutable vcount : int;
  mutable vmean : float;
  mutable vm2 : float;
}

type executed = {
  xvalue : float;
  xci95 : (float * float) option;
  xunits : int;
  xseconds : float;
}

type inflight = {
  id : int;
  fp : string;
  cls : class_info;
  requested : int;
  lat : Mde_obs.Histogram.t;  (* the request class's latency histogram *)
}

(* Latency is tracked per request class (one histogram per [kind]
   constructor); counters split the cache-served and degraded paths out
   of the aggregate. *)
type metrics = {
  m_latency : Mde_obs.Histogram.t array;  (* indexed by [kind_index] *)
  m_degraded : Mde_obs.Counter.t;
  m_cache_served : Mde_obs.Counter.t;
}

let kind_index = function
  | Mcdb_mean _ -> 0
  | Mcdb_tail _ -> 1
  | Chain_mean _ -> 2
  | Composite_estimate _ -> 3

let kind_class_labels = [| "mcdb_mean"; "mcdb_tail"; "chain_mean"; "composite" |]

type t = {
  clock : unit -> float;
  impl : Mde_relational.Impl.t option;  (* engine for bundle-plan execution *)
  cache : (float * (float * float) option * int) Cache.t;
  sched : executed Scheduler.t;
  models : (string, model) Hashtbl.t;
  classes : (string, class_info) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  admission : admission;
  inflight : (int, inflight) Hashtbl.t;  (* scheduler ticket -> bookkeeping *)
  mutable ready : (int * response) list;  (* completed at submission (cache hits) *)
  mutable next_id : int;
  mutable served : int;
  mutable rejected : int;
  mutable degraded_count : int;
  metrics : metrics;
}

let default_admission = Cost_aware { min_gain = 1. +. 1e-9; warmup = 3 }

let create ?pool ?impl ?(clock = Mde_obs.Clock.wall) ?obs ?(cache_capacity = 256)
    ?(cache_ttl = infinity) ?(scheduler = Scheduler.default_config)
    ?(admission = default_admission) () =
  let obs = match obs with Some o -> o | None -> Mde_obs.default () in
  {
    clock;
    impl;
    cache = Cache.create ~obs ~capacity:cache_capacity ~ttl:cache_ttl ~clock ();
    sched = Scheduler.create ?pool ~clock ~obs scheduler;
    models = Hashtbl.create 8;
    classes = Hashtbl.create 16;
    seen = Hashtbl.create 64;
    admission;
    inflight = Hashtbl.create 16;
    ready = [];
    next_id = 0;
    served = 0;
    rejected = 0;
    degraded_count = 0;
    metrics =
      {
        m_latency =
          Array.map
            (fun cls ->
              Mde_obs.histogram obs
                ~help:"Submission-to-availability latency, by request class"
                ~labels:[ ("class", cls) ]
                "mde_serve_latency_seconds")
            kind_class_labels;
        m_degraded =
          Mde_obs.counter obs ~help:"Responses degraded to fit a deadline budget"
            "mde_serve_degraded_total";
        m_cache_served =
          Mde_obs.counter obs ~help:"Responses answered from the result cache"
            "mde_serve_cache_served_total";
      };
  }

let register t name model =
  if Hashtbl.mem t.models name then
    invalid_arg (Printf.sprintf "Server: model %S already registered" name);
  Hashtbl.replace t.models name model

let register_mcdb t ~name ~query db = register t name (Mcdb { db; query })

let register_mcdb_plan t ~name ~table ~plan db =
  (* Fail at registration, not first request: the bundle path serves the
     per-repetition samples of the plan's single global aggregate. *)
  if plan.Bundle.group_keys <> [] then
    invalid_arg "Server: bundle plan must aggregate into a single global group";
  if plan.Bundle.aggs = [] then invalid_arg "Server: bundle plan has no aggregates";
  register t name (Bundle_model { db; table; plan })
let register_chain t ~name ~query chain = register t name (Chain_model { chain; query })
let register_composite t ~name stages = register t name (Composite stages)

let lookup t name =
  match Hashtbl.find_opt t.models name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Server: unknown model %S" name)

(* Smallest replication count each kind can be degraded to and still
   satisfy its estimator's preconditions. *)
let floor_units = function
  | Mcdb_mean _ | Chain_mean _ | Composite_estimate _ -> 2
  | Mcdb_tail { p; _ } ->
    let tail = Float.min p (1. -. p) in
    Stdlib.max 2 (int_of_float (ceil (1. /. tail)))

let units_of = function
  | Mcdb_mean { reps } | Mcdb_tail { reps; _ } | Chain_mean { reps; _ } -> reps
  | Composite_estimate { n; _ } -> n

let validate t request =
  let model = lookup t request.model in
  (match request.deadline with
  | Some d when not (d > 0.) -> invalid_arg "Server: deadline must be positive"
  | _ -> ());
  (match (model, request.kind) with
  | (Mcdb _ | Bundle_model _), (Mcdb_mean _ | Mcdb_tail _)
  | Chain_model _, Chain_mean _
  | Composite _, Composite_estimate _ -> ()
  | _ ->
    invalid_arg
      (Printf.sprintf "Server: request kind incompatible with model %S" request.model));
  (match request.kind with
  | Mcdb_tail { p; _ } when not (p > 0. && p < 1.) ->
    invalid_arg "Server: tail p must be in (0,1)"
  | Composite_estimate { alpha; _ } when not (alpha > 0. && alpha <= 1.) ->
    invalid_arg "Server: alpha must be in (0,1]"
  | Chain_mean { steps; _ } when steps < 1 -> invalid_arg "Server: steps must be >= 1"
  | _ -> ());
  if units_of request.kind < floor_units request.kind then
    invalid_arg
      (Printf.sprintf "Server: %d replications below the minimum %d for this query"
         (units_of request.kind) (floor_units request.kind));
  model

let model_fingerprint t request =
  match lookup t request.model with
  | Mcdb { db; _ } -> Printf.sprintf "mcdb:%s:%s" request.model (Database.fingerprint db)
  | Bundle_model { db; table; plan } ->
    Printf.sprintf "bundle:%s:%s:%s:%s" request.model table
      (Bundle.plan_fingerprint plan) (Database.fingerprint db)
  | Chain_model _ -> Printf.sprintf "chain:%s" request.model
  | Composite _ -> Printf.sprintf "rc:%s" request.model

let fingerprint t request =
  let mfp = model_fingerprint t request in
  match request.kind with
  | Mcdb_mean { reps } -> Printf.sprintf "%s|mean|reps=%d|seed=%d" mfp reps request.seed
  | Mcdb_tail { reps; p } ->
    Printf.sprintf "%s|tail|reps=%d|p=%.17g|seed=%d" mfp reps p request.seed
  | Chain_mean { steps; reps } ->
    Printf.sprintf "%s|chain|steps=%d|reps=%d|seed=%d" mfp steps reps request.seed
  | Composite_estimate { n; alpha } ->
    Rc.query_fingerprint ~model:mfp ~n ~alpha ~seed:request.seed

(* The class groups requests that micro-batch together and share one
   admission decision: same model and parameters, any seed. *)
let class_key t request =
  let mfp = model_fingerprint t request in
  match request.kind with
  | Mcdb_mean { reps } -> Printf.sprintf "%s|mean|reps=%d" mfp reps
  | Mcdb_tail { reps; p } -> Printf.sprintf "%s|tail|reps=%d|p=%.17g" mfp reps p
  | Chain_mean { steps; reps } -> Printf.sprintf "%s|chain|steps=%d|reps=%d" mfp steps reps
  | Composite_estimate { n; alpha } ->
    Printf.sprintf "%s|rc|n=%d|alpha=%.17g" mfp n alpha

let class_info t key =
  match Hashtbl.find_opt t.classes key with
  | Some info -> info
  | None ->
    let info =
      {
        requests = 0;
        repeats = 0;
        executions = 0;
        exec_seconds = 0.;
        exec_units = 0;
        probes = 0;
        probe_seconds = 0.;
        vcount = 0;
        vmean = 0.;
        vm2 = 0.;
      }
    in
    Hashtbl.replace t.classes key info;
    info

let effective_units ~requested ~floor_units ~time_left ~per_unit_cost =
  match time_left with
  | None -> requested
  | Some left when left <= 0. -> Stdlib.min requested floor_units
  | Some left -> (
    match per_unit_cost with
    | Some cpu when cpu > 0. ->
      let affordable = int_of_float (left /. cpu) in
      Stdlib.min requested (Stdlib.max floor_units affordable)
    | _ -> requested)

(* Runs on a pool domain: reads only its captured snapshot, returns
   timing for the caller to fold into the class statistics. *)
let execute ~clock ~impl ~model ~kind ~seed ~per_unit_cost ~time_left =
  let requested = units_of kind in
  let floor_units = floor_units kind in
  let units = effective_units ~requested ~floor_units ~time_left ~per_unit_cost in
  let t0 = clock () in
  let xvalue, xci95 =
    match (model, kind) with
    | Mcdb { db; query }, Mcdb_mean _ ->
      let est = Database.estimate db (Rng.create ~seed ()) ~reps:units ~query in
      (est.Est.mean, Some est.Est.ci95)
    | Mcdb { db; query }, Mcdb_tail { p; _ } ->
      let samples = Database.monte_carlo db (Rng.create ~seed ()) ~reps:units ~query in
      (* Point estimate and CI share one sort of the samples. *)
      let q, ci = Est.tail_estimate samples ~p ~level:0.95 in
      (q, Some ci)
    | Bundle_model { db; table; plan }, Mcdb_mean _ ->
      let samples =
        Database.plan_samples ?impl db (Rng.create ~seed ()) ~table ~reps:units plan
      in
      let est = Est.of_samples samples in
      (est.Est.mean, Some est.Est.ci95)
    | Bundle_model { db; table; plan }, Mcdb_tail { p; _ } ->
      let samples =
        Database.plan_samples ?impl db (Rng.create ~seed ()) ~table ~reps:units plan
      in
      let q, ci = Est.tail_estimate samples ~p ~level:0.95 in
      (q, Some ci)
    | Chain_model { chain; query }, Chain_mean { steps; _ } ->
      let series = Chain.monte_carlo chain (Rng.create ~seed ()) ~steps ~reps:units ~query in
      let finals = Array.map (fun row -> row.(steps)) series in
      let est = Est.of_samples finals in
      (est.Est.mean, Some est.Est.ci95)
    | Composite stages, Composite_estimate { alpha; _ } ->
      let est = Rc.estimate stages (Rng.create ~seed ()) ~n:units ~alpha in
      (est.Rc.theta_hat, None)
    | _ -> assert false (* ruled out by [validate] *)
  in
  { xvalue; xci95; xunits = units; xseconds = clock () -. t0 }

let submit t request =
  let model = validate t request in
  let fp = fingerprint t request in
  let cls = class_info t (class_key t request) in
  cls.requests <- cls.requests + 1;
  if Hashtbl.mem t.seen fp then cls.repeats <- cls.repeats + 1
  else Hashtbl.add t.seen fp ();
  let probe_start = t.clock () in
  let cached = Cache.find t.cache fp in
  let probe_end = t.clock () in
  cls.probes <- cls.probes + 1;
  cls.probe_seconds <- cls.probe_seconds +. (probe_end -. probe_start);
  match cached with
  | Some (value, ci95, reps_executed) ->
    let id = t.next_id in
    t.next_id <- id + 1;
    t.served <- t.served + 1;
    Mde_obs.Counter.incr t.metrics.m_cache_served;
    Mde_obs.Histogram.observe
      t.metrics.m_latency.(kind_index request.kind)
      (probe_end -. probe_start);
    let resp =
      {
        value;
        ci95;
        reps_requested = units_of request.kind;
        reps_executed;
        degraded = false;
        cache = Hit;
        latency = probe_end -. probe_start;
      }
    in
    t.ready <- (id, resp) :: t.ready;
    `Queued id
  | None -> (
    let per_unit_cost =
      if cls.exec_units > 0 then Some (cls.exec_seconds /. float_of_int cls.exec_units)
      else None
    in
    let clock = t.clock and impl = t.impl in
    let kind = request.kind and seed = request.seed in
    let run = execute ~clock ~impl ~model ~kind ~seed ~per_unit_cost in
    match
      Scheduler.submit t.sched ~class_key:(class_key t request) ?deadline:request.deadline
        run
    with
    | `Rejected ->
      t.rejected <- t.rejected + 1;
      `Rejected
    | `Accepted ticket ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.inflight ticket
        {
          id;
          fp;
          cls;
          requested = units_of request.kind;
          lat = t.metrics.m_latency.(kind_index request.kind);
        };
      `Queued id)

let welford cls x =
  cls.vcount <- cls.vcount + 1;
  let delta = x -. cls.vmean in
  cls.vmean <- cls.vmean +. (delta /. float_of_int cls.vcount);
  cls.vm2 <- cls.vm2 +. (delta *. (x -. cls.vmean))

let admit_decision t cls =
  match t.admission with
  | Admit_all -> true
  | Cost_aware { min_gain; warmup } ->
    if cls.executions <= warmup then true
    else
      let compute_cost = cls.exec_seconds /. float_of_int cls.executions in
      let serve_cost =
        if cls.probes > 0 then
          Float.max 1e-9 (cls.probe_seconds /. float_of_int cls.probes)
        else 1e-9
      in
      let result_variance =
        if cls.vcount >= 2 then cls.vm2 /. float_of_int (cls.vcount - 1) else 0.
      in
      let repeat_fraction = float_of_int cls.repeats /. float_of_int cls.requests in
      Cache.pays_off ~min_gain
        (Cache.class_statistics ~compute_cost ~serve_cost ~result_variance
           ~repeat_fraction)

let settle t completions =
  let executed =
    List.map
      (fun { Scheduler.ticket; result; latency } ->
        let fl =
          match Hashtbl.find_opt t.inflight ticket with
          | Some fl -> fl
          | None -> assert false
        in
        Hashtbl.remove t.inflight ticket;
        fl.cls.executions <- fl.cls.executions + 1;
        fl.cls.exec_seconds <- fl.cls.exec_seconds +. result.xseconds;
        fl.cls.exec_units <- fl.cls.exec_units + result.xunits;
        welford fl.cls result.xvalue;
        let degraded = result.xunits < fl.requested in
        if degraded then begin
          t.degraded_count <- t.degraded_count + 1;
          Mde_obs.Counter.incr t.metrics.m_degraded
        end
        else
          Cache.add t.cache ~admit:(admit_decision t fl.cls) fl.fp
            (result.xvalue, result.xci95, result.xunits);
        t.served <- t.served + 1;
        Mde_obs.Histogram.observe fl.lat latency;
        ( fl.id,
          {
            value = result.xvalue;
            ci95 = result.xci95;
            reps_requested = fl.requested;
            reps_executed = result.xunits;
            degraded;
            cache = Miss;
            latency;
          } ))
      completions
  in
  let out = List.rev_append t.ready executed in
  t.ready <- [];
  List.sort (fun (a, _) (b, _) -> compare a b) out

let drain t = settle t (Scheduler.drain t.sched)

let shutdown t = settle t (Scheduler.shutdown t.sched)

let serve t request =
  match submit t request with
  | `Rejected -> `Rejected
  | `Queued id -> (
    match List.assoc_opt id (drain t) with
    | Some resp -> `Served resp
    | None -> assert false)

(* --- progressive-refinement hooks --- *)

(* The replication streams of a request are positional: the one-shot
   paths pre-split one stream per replication off a fresh seed root
   ([Rng.split_n], or [Bundle.of_stochastic_table]'s internal split),
   and [Rng.split] consumes exactly one [bits64] of its parent. So the
   root advanced past the first [lo] splits yields streams lo, lo+1, …
   of the full run — which is what makes an incremental batch
   bit-identical to the same slice of any larger one-shot execution. *)
let slice_root ~seed ~lo =
  let root = Rng.create ~seed () in
  for _ = 1 to lo do
    ignore (Rng.split root)
  done;
  root

let refinement_key t request =
  ignore (validate t request);
  let mfp = model_fingerprint t request in
  match request.kind with
  | Mcdb_mean _ -> Printf.sprintf "%s|mean|seed=%d" mfp request.seed
  | Mcdb_tail { p; _ } -> Printf.sprintf "%s|tail|p=%.17g|seed=%d" mfp p request.seed
  | Chain_mean { steps; _ } ->
    Printf.sprintf "%s|chain|steps=%d|seed=%d" mfp steps request.seed
  | Composite_estimate { alpha; _ } ->
    Printf.sprintf "%s|rc|alpha=%.17g|seed=%d" mfp alpha request.seed

let sample_batch t request ~lo ~hi =
  let model = validate t request in
  if lo < 0 then invalid_arg "Server.sample_batch: lo must be >= 0";
  if hi <= lo then invalid_arg "Server.sample_batch: hi must be > lo";
  let pool = Scheduler.pool t.sched in
  let reps = hi - lo in
  let root = slice_root ~seed:request.seed ~lo in
  match (model, request.kind) with
  | Mcdb { db; query }, (Mcdb_mean _ | Mcdb_tail _) ->
    Database.monte_carlo ?pool db root ~reps ~query
  | Bundle_model { db; table; plan }, (Mcdb_mean _ | Mcdb_tail _) ->
    Database.plan_samples ?pool ?impl:t.impl db root ~table ~reps plan
  | Chain_model { chain; query }, Chain_mean { steps; _ } ->
    let series = Chain.monte_carlo ?pool chain root ~steps ~reps ~query in
    Array.map (fun row -> row.(steps)) series
  | Composite _, Composite_estimate _ ->
    invalid_arg
      "Server.sample_batch: composite estimates consume their RNG sequentially; \
       refine them by re-serving at a larger n"
  | _ -> assert false (* ruled out by [validate] *)

type stats = {
  served : int;
  rejected : int;
  degraded : int;
  cache : Cache.counters;
  scheduler : Scheduler.counters;
}

let stats (t : t) =
  {
    served = t.served;
    rejected = t.rejected;
    degraded = t.degraded_count;
    cache = Cache.counters t.cache;
    scheduler = Scheduler.counters t.sched;
  }
