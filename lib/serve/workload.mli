(** Deterministic closed-loop workload driver for {!Server}.

    Models the repeated, popularity-skewed request stream the serving
    layer exists for: a catalog of distinct query templates is sampled
    with Zipf(s) popularity (rank 0 most popular), [concurrency] requests
    are kept outstanding per round (submitted together, then drained —
    a closed loop), and every response is recorded. The request sequence
    depends only on [seed], [zipf_s], [requests] and the catalog — never
    on server behaviour — so two passes over the same workload issue
    identical requests (the warm-vs-cold comparison the benchmark
    relies on). *)

type config = {
  requests : int;  (** total requests to issue *)
  concurrency : int;  (** outstanding requests per closed-loop round *)
  zipf_s : float;  (** Zipf skew; 0 = uniform popularity *)
  seed : int;  (** workload RNG seed (independent of query seeds) *)
}

type report = {
  issued : int;
  served : int;
  rejected : int;  (** backpressure rejections (not retried) *)
  degraded : int;  (** deadline-degraded responses *)
  hits : int;  (** responses served from cache *)
  elapsed : float;
  throughput : float;  (** served / elapsed, requests per clock unit *)
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;  (** latency percentiles over served requests *)
  hit_rate : float;  (** hits / served *)
  rejection_rate : float;  (** rejected / issued *)
}

val zipf_cdf : s:float -> n:int -> float array
(** CDF of the Zipf(s) popularity law over ranks 0..n-1
    (P(rank r) ∝ 1/(r+1)^s). Requires [n ≥ 1] and [s ≥ 0]. *)

val zipf_sample : Mde_prob.Rng.t -> float array -> int
(** Inverse-CDF sample of a rank. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile of an unsorted sample. Raises
    [Invalid_argument] on an empty sample array — a real branch, not an
    assert, so it holds under [--profile noassert] too (an empty sample
    has no ranks; the old behaviour silently returned [nan]). *)

val percentiles : float array -> float array -> float array
(** Several nearest-rank percentiles off a single sort; element [i]
    equals [percentile xs qs.(i)] exactly (the report's p50/p95/p99 are
    computed this way rather than with three sorts). Raises
    [Invalid_argument] on an empty sample array, like {!percentile};
    the reports below keep their documented [nan] percentiles when
    nothing was served by not consulting it. *)

(** {2 Open loop}

    The closed loop above caps outstanding requests at [concurrency],
    so it can never overload the server — it measures best-case
    latency, not behaviour under pressure. The open loop instead fixes
    an {e offered load}: arrivals follow a Poisson process at [rate]
    requests per clock second, submitted when their arrival time comes
    {e whether or not} earlier requests completed. When offered load
    exceeds capacity, due arrivals bunch into bursts that fill the
    bounded queues and the target sheds — which is the regime the
    latency-under-load curves in [bench/BENCH_serve.json] record. *)

type target = Target.t
(** What both loops drive: anything that can accept-or-drop a request
    and later deliver responses ({!Target}). [`Dropped] unifies
    {!Server}'s backpressure [`Rejected] and {!Shard}'s typed [`Shed] —
    the driver counts them as shed either way. (The ad-hoc closure
    record this type used to be is now the first-class {!Target.t}.) *)

val server_target : Server.t -> target
  [@@ocaml.deprecated "use Target.of_server"]

val shard_target : Shard.t -> target
  [@@ocaml.deprecated "use Target.of_shard"]

type open_config = {
  arrivals : int;  (** total arrivals to generate *)
  rate : float;  (** offered load: mean arrivals per clock second (> 0) *)
  zipf_s : float;  (** Zipf skew of catalog popularity *)
  seed : int;  (** fixes the whole arrival process *)
}

type open_report = {
  offered : int;  (** arrivals issued *)
  offered_rate : float;  (** [config.rate], echoed *)
  served : int;
  shed : int;  (** dropped at admission (backpressure or typed shed) *)
  degraded : int;
  hits : int;
  elapsed : float;
  throughput : float;  (** served / elapsed — saturates at capacity *)
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;  (** latency percentiles over served requests; [nan] if none *)
  shed_rate : float;  (** shed / offered *)
}

val run_open :
  ?clock:(unit -> float) ->
  Target.t ->
  catalog:Server.request array ->
  open_config ->
  open_report * Server.response option array
(** Drive the target with a Poisson/Zipf open-loop arrival stream.
    The arrival schedule (interarrival gaps and catalog picks) is drawn
    entirely from [seed] before the first submission, so two runs at
    the same seed offer the identical request sequence regardless of
    target behaviour; only {e which} arrivals get shed depends on
    timing. Element [i] of the response array answers the i-th arrival
    ([None] if it was shed). The driver spins on [clock] while waiting
    for the next arrival (it has nothing else to do — drains happen
    whenever work is outstanding), so a low-rate run burns a core for
    its duration; benchmark configs keep durations in seconds. Raises
    [Invalid_argument] on an empty catalog, [arrivals < 1] or a
    non-positive [rate]. *)

val run :
  ?clock:(unit -> float) ->
  Target.t ->
  catalog:Server.request array ->
  config ->
  report * Server.response option array
(** Drive the target (closed loop); element [i] of the returned array is
    the response to the i-th issued request ([None] if it was rejected
    or shed). [clock]
    (default {!Mde_obs.Clock.wall} — elapsed wall time, so throughput is
    real requests-per-second rather than the per-CPU-second figure the
    old [Sys.time] default produced) times throughput only; latencies
    come from the server's own clock. Raises [Invalid_argument] on an
    empty catalog or non-positive [requests]/[concurrency]. *)
