open Mde_relational
module Rng = Mde_prob.Rng
module Chain = Mde_simsql.Chain

let sbp_database rows =
  let patients =
    Table.create
      (Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ])
      (List.init rows (fun i ->
           [| Value.Int i; Value.String (if i mod 2 = 0 then "F" else "M") |]))
  in
  let param =
    Table.create
      (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
      [ [| Value.Float 120.; Value.Float 15. |] ]
  in
  let st =
    Mde_mcdb.Stochastic_table.define ~name:"SBP_DATA"
      ~schema:
        (Schema.of_list
           [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ])
      ~driver:patients ~vg:Mde_mcdb.Vg.normal
      ~params:(fun _ -> [ param ])
      ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |])
  in
  let db = Mde_mcdb.Database.create () in
  Mde_mcdb.Database.add_stochastic db st;
  db

(* The hand-rolled fold kept as the row-level oracle: the columnar
   [mean_sbp] below must reproduce these bits exactly. *)
let mean_sbp_rows catalog =
  let t = Catalog.find catalog "SBP_DATA" in
  let total = ref 0. and n = ref 0 in
  Table.iter
    (fun row ->
      total := !total +. Value.to_float row.(2);
      incr n)
    t;
  !total /. float_of_int !n

(* Served through the unified columnar substrate: a global Avg(sbp)
   accumulates the sum in row order and divides once, exactly like the
   naive fold, so registered models keep answering identical bits. *)
let mean_sbp catalog =
  let t = Columnar.of_table (Catalog.find catalog "SBP_DATA") in
  let out =
    Columnar.group_by ~keys:[] ~aggs:[ ("mean_sbp", Algebra.Avg (Expr.col "sbp")) ] t
  in
  Value.to_float (Columnar.to_table out |> Table.rows).(0).(0)

let walk_chain () =
  let schema = Schema.of_list [ ("x", Value.Tfloat) ] in
  let table x = Table.create schema [ [| Value.Float x |] ] in
  let current state = Value.to_float (Table.rows (Chain.table state "X")).(0).(0) in
  ( {
      Chain.initial = (fun _rng -> Chain.state_of_tables [ ("X", table 0.) ]);
      transition =
        (fun rng state ->
          Chain.with_table state "X" (table (current state +. Rng.float rng -. 0.5)));
    },
    current )

(* The columnar twin of [mean_sbp]: per-repetition Avg(sbp) in one fused
   bundle pass accumulates rows in the same order as [Table.iter] over
   the realized instance, so the served samples are bit-identical. *)
let sbp_plan =
  {
    Mde_mcdb.Bundle.where_ = None;
    derive = [];
    group_keys = [];
    aggs = [ ("mean_sbp", Mde_mcdb.Bundle.Avg (Expr.col "sbp")) ];
  }

let queue_composite =
  {
    Mde_composite.Result_cache.model1 = (fun rng -> 10. *. Rng.float rng);
    model2 = (fun rng y1 -> y1 +. Rng.float rng);
  }

let server ?pool ?impl ?clock ?cache_capacity ?cache_ttl ?scheduler ?admission
    ?(rows = 120) () =
  let t =
    Server.create ?pool ?impl ?clock ?cache_capacity ?cache_ttl ?scheduler ?admission ()
  in
  let db = sbp_database rows in
  Server.register_mcdb t ~name:"sbp" ~query:mean_sbp db;
  Server.register_mcdb_plan t ~name:"sbp_bundle" ~table:"SBP_DATA" ~plan:sbp_plan db;
  let chain, current = walk_chain () in
  Server.register_chain t ~name:"walk" ~query:current chain;
  Server.register_composite t ~name:"queue" queue_composite;
  t

(* The sharded twin of [server]: same models on every shard, plus the
   federated "sbp_any" name answered by whichever of the bundle / naive
   SBP backends is currently cheaper (identical bits either way). *)
let front ?pool ?impl ?clock ?cache_capacity ?cache_ttl ?scheduler ?admission
    ?high_water ?(rows = 120) ~shards () =
  let t =
    Shard.create ?pool ?impl ?clock ?cache_capacity ?cache_ttl ?scheduler ?admission
      ?high_water ~shards ()
  in
  let db = sbp_database rows in
  Shard.register_mcdb t ~name:"sbp" ~query:mean_sbp db;
  Shard.register_mcdb_plan t ~name:"sbp_bundle" ~table:"SBP_DATA" ~plan:sbp_plan db;
  let chain, current = walk_chain () in
  Shard.register_chain t ~name:"walk" ~query:current chain;
  Shard.register_composite t ~name:"queue" queue_composite;
  Shard.federate t ~name:"sbp_any" ~backends:[ "sbp_bundle"; "sbp" ];
  t

let catalog ?deadline size =
  if size < 1 then invalid_arg "Demo.catalog: size must be >= 1";
  Array.init size (fun i ->
      let seed = 1000 + i in
      let kind =
        match i mod 5 with
        | 0 -> Server.Mcdb_mean { reps = 32 + (16 * (i mod 3)) }
        | 1 -> Server.Mcdb_tail { reps = 64; p = 0.9 }
        | 2 -> Server.Chain_mean { steps = 8; reps = 24 }
        | 3 -> Server.Composite_estimate { n = 64; alpha = 0.25 }
        | _ -> Server.Mcdb_tail { reps = 64; p = 0.9 }
      in
      let model =
        match i mod 5 with
        | 0 | 1 -> "sbp"
        | 2 -> "walk"
        | 3 -> "queue"
        | _ -> "sbp_bundle"
      in
      { Server.model; kind; seed; deadline })

let responses_identical (a : Server.response) (b : Server.response) =
  a.Server.value = b.Server.value && a.Server.ci95 = b.Server.ci95
  && a.Server.reps_executed = b.Server.reps_executed

let cold_warm ?clock target ~catalog config =
  let cold, cold_responses = Workload.run ?clock target ~catalog config in
  let warm, warm_responses = Workload.run ?clock target ~catalog config in
  let compared = ref 0 and mismatches = ref 0 in
  Array.iteri
    (fun i (cold_r : Server.response option) ->
      match (cold_r, warm_responses.(i)) with
      | Some a, Some b when (not a.Server.degraded) && not b.Server.degraded ->
        incr compared;
        if not (responses_identical a b) then incr mismatches
      | _ -> ())
    cold_responses;
  ( cold,
    warm,
    if !mismatches = 0 then `Identical !compared else `Mismatch !mismatches )
