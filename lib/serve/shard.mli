(** The sharded serving front: N independent shards — each its own
    {!Cache} + {!Scheduler} over a slice of the shared pool — behind
    consistent-hash routing of canonical query fingerprints
    ({!Router}), cross-shard admission control with typed load
    shedding, and a federation catalog that routes each request to the
    cheapest registered backend able to answer it.

    {b Routing.} Every request has a canonical routing fingerprint
    ({!fingerprint} — backend-independent for federated models, so a
    logical query keeps its shard even when the catalog switches
    backends). The rendezvous router sends equal fingerprints to the
    same shard, which is what makes per-shard caches effective: all
    repeats of a query warm exactly one shard. Growing the front from
    [n] to [n+1] shards remaps only ≈K/(n+1) of K fingerprints
    ({!Router}), so most of the warmed cache survives a resize.

    {b Shedding.} Admission is two-level and always {e typed}: a shard
    whose scheduler is at its high-water mark sheds with
    [Shard_queue_full]; a front whose aggregate outstanding count hits
    [high_water] sheds with [Front_high_water]. A shed is a normal
    response path — counted in {!stats} and [mde_shard_shed_total],
    never an exception, never silent — so overload degrades one
    request at a time instead of sinking the whole front.

    {b Federation.} {!federate} publishes a logical model name backed
    by several registered backends that answer the same query
    bit-for-bit (e.g. a naive MCDB scan and its columnar bundle plan).
    The front first probes each backend once in static preference
    order (bundle plans before naive scans — one fused sweep beats one
    realization per repetition), then routes every subsequent request
    to the backend with the lowest observed mean execution latency.
    Because backends agree bit-for-bit, federation changes cost only,
    never answers.

    {b Determinism.} For a fixed seed the sharded front returns values
    bit-identical to a single-shard {!Server} over the same models:
    work closures derive everything from the request seed, routing
    only picks {e where} a closure runs, and shedding — the one
    sanctioned divergence — is typed and accounted. *)

type t

type shed_reason =
  | Shard_queue_full  (** the routed shard's scheduler is at its high-water mark *)
  | Front_high_water  (** the front's aggregate outstanding count is at [high_water] *)

type shed = {
  shard : int;  (** the shard the request routed to *)
  reason : shed_reason;
  depth : int;  (** the queue depth that triggered the shed *)
  limit : int;  (** the high-water mark it hit *)
}

val create :
  ?pool:Mde_par.Pool.t ->
  ?impl:Mde_relational.Impl.t ->
  ?clock:(unit -> float) ->
  ?obs:Mde_obs.t ->
  ?cache_capacity:int ->
  ?cache_ttl:float ->
  ?scheduler:Scheduler.config ->
  ?admission:Server.admission ->
  ?high_water:int ->
  shards:int ->
  unit ->
  t
(** A front of [shards] independent {!Server}s sharing [pool] and
    [impl] (each
    scheduler fans its batches over the same pool — a slice in time
    rather than a partition of domains) and [obs]. [cache_capacity],
    [cache_ttl], [scheduler] and [admission] configure {e each} shard,
    so total cache capacity is [shards * cache_capacity].
    [high_water] (default [shards * scheduler.queue_capacity]) bounds
    the front's aggregate outstanding requests. Registers
    [mde_shard_routed_total{shard=...}], [mde_shard_shed_total{shard=...}],
    [mde_shard_depth{shard=...}], [mde_shard_outstanding] and
    [mde_shard_imbalance] (max/mean routed across shards) on [obs]
    (default {!Mde_obs.default}). Raises [Invalid_argument] if
    [shards < 1] or [high_water < 1]. *)

val shards : t -> int
val router : t -> Router.t

(** {2 Registration} — mirrors {!Server}; each call registers the model
    on every shard, so routing is free to place any fingerprint
    anywhere. *)

val register_mcdb :
  t -> name:string -> query:(Mde_relational.Catalog.t -> float) -> Mde_mcdb.Database.t -> unit

val register_mcdb_plan :
  t ->
  name:string ->
  table:string ->
  plan:Mde_mcdb.Bundle.plan ->
  Mde_mcdb.Database.t ->
  unit

val register_chain :
  t -> name:string -> query:(Mde_simsql.Chain.state -> float) -> Mde_simsql.Chain.t -> unit

val register_composite : t -> name:string -> 'a Mde_composite.Result_cache.two_stage -> unit

val federate : t -> name:string -> backends:string list -> unit
(** Publish logical model [name], answered by whichever of [backends]
    is currently cheapest. Backends must already be registered, all
    able to answer the same request kinds (MCDB scans and bundle plans
    are mutually compatible; chains and composites only group with
    themselves), and are preferred in the order: bundle plans, then
    everything else, then registration order. Raises
    [Invalid_argument] on an empty backend list, an unknown backend,
    incompatible backends, or a [name] already taken. *)

val fingerprint : t -> Server.request -> string
(** The canonical fingerprint the front routes on. For a federated
    model this is the fingerprint of its statically-preferred backend —
    fixed at {!federate} time — so a logical query's shard never moves
    when the cost-based catalog changes its mind about the backend.
    Raises [Invalid_argument] on unknown models or kind mismatches,
    exactly as {!Server.fingerprint}. *)

val shard_of : t -> Server.request -> int
(** [Router.route (router t) (fingerprint t request)] — where the
    request will execute. Pure: does not submit. *)

val backend_for : t -> Server.request -> string
(** The backend the federation catalog would resolve [request.model] to
    right now ([request.model] itself for non-federated models). Pure:
    does not update probing state. *)

(** {2 Serving} *)

val submit : t -> Server.request -> [ `Queued of int | `Shed of shed ]
(** Resolve the backend, route, and submit to the routed shard.
    [`Queued id] is a front-level id delivered by {!drain}; [`Shed]
    is typed admission-control shedding (see above). Raises
    [Invalid_argument] on malformed requests, as {!Server.submit}. *)

val drain : t -> (int * Server.response) list
(** Drain every shard and deliver all completed responses in front
    submission order. Observed execution latencies feed the federation
    catalog's cost estimates. *)

val serve : t -> Server.request -> [ `Served of Server.response | `Shed of shed ]
(** [submit] + [drain] for a single request. *)

val shutdown : t -> (int * Server.response) list
(** {!Server.shutdown} on every shard: deliver everything already
    executed (banked completions, pending cache hits) without running
    queued work, which is dropped and counted as abandoned. *)

(** {2 Progressive-refinement hooks} — the front-side twins of
    {!Server.refinement_key} and {!Server.sample_batch}. *)

val refinement_key : t -> Server.request -> string
(** Like routing fingerprints, the key of a federated name comes from
    its statically-preferred primary, so a session's sample store never
    moves when the cost-based catalog changes backends. *)

val sample_batch : t -> Server.request -> lo:int -> hi:int -> float array
(** Resolve the backend and run {!Server.sample_batch} on the routed
    shard. Bit-identical across backends and shard counts: federated
    backends agree bit-for-bit by contract, and streams depend only on
    the request seed — which is what lets an open session survive a
    front resize ({!Session.retarget}). *)

type stats = {
  routed : int array;  (** accepted submissions per shard *)
  shed : int array;  (** sheds per routed shard, both reasons *)
  shed_front : int;  (** the [Front_high_water] subset of sheds *)
  outstanding : int;  (** accepted but not yet delivered *)
  servers : Server.stats array;  (** per-shard server statistics *)
}

val stats : t -> stats

val imbalance : t -> float
(** max/mean of accepted submissions across shards — 1.0 is a perfectly
    balanced front, [nan] before any routing. The live value behind the
    [mde_shard_imbalance] gauge. *)
