type stats = { served : int; dropped : int; degraded : int }

type t = {
  submit : Server.request -> [ `Queued of int | `Dropped ];
  drain : unit -> (int * Server.response) list;
  stats : unit -> stats;
  refine : Server.request -> lo:int -> hi:int -> float array;
  refinement_key : Server.request -> string;
}

let of_server server =
  {
    submit =
      (fun r ->
        match Server.submit server r with `Queued id -> `Queued id | `Rejected -> `Dropped);
    drain = (fun () -> Server.drain server);
    stats =
      (fun () ->
        let s = Server.stats server in
        { served = s.Server.served; dropped = s.Server.rejected; degraded = s.Server.degraded });
    refine = (fun r ~lo ~hi -> Server.sample_batch server r ~lo ~hi);
    refinement_key = (fun r -> Server.refinement_key server r);
  }

let of_shard front =
  {
    submit =
      (fun r ->
        match Shard.submit front r with `Queued id -> `Queued id | `Shed _ -> `Dropped);
    drain = (fun () -> Shard.drain front);
    stats =
      (fun () ->
        let s = Shard.stats front in
        {
          served =
            Array.fold_left (fun acc sv -> acc + sv.Server.served) 0 s.Shard.servers;
          dropped = Array.fold_left ( + ) 0 s.Shard.shed;
          degraded =
            Array.fold_left (fun acc sv -> acc + sv.Server.degraded) 0 s.Shard.servers;
        });
    refine = (fun r ~lo ~hi -> Shard.sample_batch front r ~lo ~hi);
    refinement_key = (fun r -> Shard.refinement_key front r);
  }

let submit t request = t.submit request
let drain t = t.drain ()
let stats t = t.stats ()
let refine t request ~lo ~hi = t.refine request ~lo ~hi
let refinement_key t request = t.refinement_key request

let serve t request =
  match t.submit request with
  | `Dropped -> `Dropped
  | `Queued id -> (
    match List.assoc_opt id (t.drain ()) with
    | Some resp -> `Served resp
    | None -> assert false (* both backends deliver every queued id on drain *))
