type config = { queue_capacity : int; batch_size : int }

let default_config = { queue_capacity = 64; batch_size = 8 }

type 'a item = {
  ticket : int;
  class_key : string;
  deadline : float option;  (* absolute, on the scheduler clock *)
  submitted_at : float;
  run : time_left:float option -> 'a;
}

type 'a completion = { ticket : int; result : 'a; latency : float }

type counters = {
  submitted : int;
  rejected : int;
  completed : int;
  failed : int;
  batches : int;
  abandoned : int;
}

type metrics = {
  m_queue_depth : Mde_obs.Gauge.t;
  m_batch_size : Mde_obs.Histogram.t;
  m_rejections : Mde_obs.Counter.t;
}

type 'a t = {
  config : config;
  pool : Mde_par.Pool.t option;
  clock : unit -> float;
  mutable queue : 'a item list;  (* newest first; reversed at drain *)
  mutable stashed : 'a completion list;
      (* completions collected by a drain that raised, delivered by the
         next drain so accepted work is never lost *)
  mutable pending : int;
  mutable next_ticket : int;
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failed : int;
  mutable batches : int;
  mutable abandoned : int;
  mutable closed : bool;
  metrics : metrics;
}

let create ?pool ?(clock = Mde_obs.Clock.wall) ?obs config =
  if config.queue_capacity < 1 then
    invalid_arg "Scheduler.create: queue_capacity must be >= 1";
  if config.batch_size < 1 then invalid_arg "Scheduler.create: batch_size must be >= 1";
  let obs = match obs with Some o -> o | None -> Mde_obs.default () in
  {
    config;
    pool;
    clock;
    queue = [];
    stashed = [];
    pending = 0;
    next_ticket = 0;
    submitted = 0;
    rejected = 0;
    completed = 0;
    failed = 0;
    batches = 0;
    abandoned = 0;
    closed = false;
    metrics =
      {
        m_queue_depth =
          Mde_obs.gauge obs ~help:"Requests waiting in the scheduler queue"
            "mde_sched_queue_depth";
        m_batch_size =
          Mde_obs.histogram obs ~help:"Compatible requests fused per pool fan-out"
            ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64. |]
            "mde_sched_batch_size";
        m_rejections =
          Mde_obs.counter obs ~help:"Backpressure rejections at the high-water mark"
            "mde_sched_rejections_total";
      };
  }

let pending t = t.pending
let pool t = t.pool

let submit t ~class_key ?deadline run =
  if t.closed then invalid_arg "Scheduler.submit: scheduler is shut down";
  if t.pending >= t.config.queue_capacity then (
    t.rejected <- t.rejected + 1;
    Mde_obs.Counter.incr t.metrics.m_rejections;
    `Rejected)
  else begin
    let now = t.clock () in
    let ticket = t.next_ticket in
    t.next_ticket <- ticket + 1;
    let item =
      {
        ticket;
        class_key;
        deadline = Option.map (fun d -> now +. d) deadline;
        submitted_at = now;
        run;
      }
    in
    t.queue <- item :: t.queue;
    t.pending <- t.pending + 1;
    t.submitted <- t.submitted + 1;
    Mde_obs.Gauge.set t.metrics.m_queue_depth (float_of_int t.pending);
    `Accepted ticket
  end

(* Take up to [batch_size] items compatible with the head's class, in
   arrival order; return them with the rest of the queue (still in
   arrival order). *)
let take_batch config = function
  | [] -> ([], [])
  | first :: _ as queue ->
    let rec go taken n rest = function
      | item :: tl when n < config.batch_size && item.class_key = first.class_key ->
        go (item :: taken) (n + 1) rest tl
      | item :: tl -> go taken n (item :: rest) tl
      | [] -> (List.rev taken, List.rev rest)
    in
    go [] 0 [] queue

let drain t =
  (* Completions rescued from a previous drain that raised go out first. *)
  let completions = ref t.stashed in
  t.stashed <- [];
  (* Oldest first. *)
  let queue = ref (List.rev t.queue) in
  t.queue <- [];
  (* First failure seen, re-raised once its batch's siblings are
     accounted for. *)
  let error = ref None in
  (* Batch currently handed to the pool; non-empty only while a fan-out
     is in flight, so a failing dispatch can put it back. *)
  let in_flight = ref [] in
  let restore () =
    (* Re-stash the unprocessed remainder (newest first) and bank the
       completions already collected for the next drain: one failing
       request must not destroy accepted work. *)
    t.queue <- List.rev !queue;
    t.stashed <- !completions;
    Mde_obs.Gauge.set t.metrics.m_queue_depth (float_of_int t.pending)
  in
  (try
     while !queue <> [] && !error = None do
       let batch, rest = take_batch t.config !queue in
       in_flight := batch;
       queue := rest;
       Mde_obs.Histogram.observe t.metrics.m_batch_size
         (float_of_int (List.length batch));
       let dispatch = t.clock () in
       (* Each closure is wrapped to capture its own outcome, so the pool
          fan-out itself never raises on a user exception and sibling
          results in the same batch survive a failing request. *)
       let runs =
         Array.of_list
           (List.map
              (fun item ->
                let time_left = Option.map (fun d -> d -. dispatch) item.deadline in
                fun () ->
                  match item.run ~time_left with
                  | v -> Ok v
                  | exception e -> Error (e, Printexc.get_raw_backtrace ()))
              batch)
       in
       let results =
         Mde_par.Pool.map ?pool:t.pool ~site:"serve.batch" (fun f -> f ()) runs
       in
       let finished = t.clock () in
       in_flight := [];
       t.batches <- t.batches + 1;
       List.iteri
         (fun i (item : _ item) ->
           t.pending <- t.pending - 1;
           match results.(i) with
           | Ok result ->
             t.completed <- t.completed + 1;
             completions :=
               { ticket = item.ticket; result; latency = finished -. item.submitted_at }
               :: !completions
           | Error (e, bt) ->
             t.failed <- t.failed + 1;
             if !error = None then error := Some (e, bt))
         batch;
       Mde_obs.Gauge.set t.metrics.m_queue_depth (float_of_int t.pending)
     done
   with exn ->
     (* The fan-out itself failed (e.g. a shut-down pool): the batch
        never ran, so put it back in front of the remainder. *)
     queue := !in_flight @ !queue;
     restore ();
     raise exn);
  match !error with
  | Some (e, bt) ->
    restore ();
    Printexc.raise_with_backtrace e bt
  | None -> List.sort (fun a b -> compare a.ticket b.ticket) !completions

(* Completions banked by a failed drain used to be silently lost when
   the scheduler was dropped before the next drain: deliver them here
   instead, and account every undispatched item exactly once. *)
let shutdown t =
  if t.closed then []
  else begin
    t.closed <- true;
    let banked = t.stashed in
    t.stashed <- [];
    t.abandoned <- t.abandoned + t.pending;
    t.pending <- 0;
    t.queue <- [];
    Mde_obs.Gauge.set t.metrics.m_queue_depth 0.;
    List.sort (fun a b -> compare a.ticket b.ticket) banked
  end

let counters t =
  {
    submitted = t.submitted;
    rejected = t.rejected;
    completed = t.completed;
    failed = t.failed;
    batches = t.batches;
    abandoned = t.abandoned;
  }
