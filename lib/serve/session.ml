module Rc = Mde_composite.Result_cache
module Est = Mde_mcdb.Estimator

type planner = Explore | Round_robin

type config = { tick_reps : int; min_batch : int; min_gain : float }

let default_config = { tick_reps = 64; min_batch = 8; min_gain = 1. +. 1e-9 }

type update = {
  id : int;
  value : float;
  ci95 : (float * float) option;
  half_width : float;
  reps_done : int;
  reps_total : int;
  reps_reused : int;
  converged : bool;
}

(* One growing sample store per refinement key, shared by every handle
   (and watcher) whose request identifies the same replication stream.
   [len] is the filled prefix; Welford moments over it feed the g(α)
   variance input. *)
type entry = {
  e_request : Server.request;  (* a representative request, for refine calls *)
  mutable buf : float array;
  mutable len : int;
  mutable vcount : int;
  mutable vmean : float;
  mutable vm2 : float;
}

(* Composite estimates are not sliceable; their store caches the levels
   already served so key-mates adopt a level instead of re-serving it. *)
type centry = { mutable levels : (int * float) list (* level n -> theta_hat *) }

type progress = {
  pr_id : int;
  pr_request : Server.request;
  pr_key : string;
  pr_total : int;
  pr_floor : int;
  pr_composite : bool;
  mutable pr_done : int;
  mutable pr_reused : int;
  mutable pr_last : update option;
  mutable pr_open : bool;
}

type watcher = {
  w_id : int;
  w_request : Server.request;
  w_key : string;
  w_total : int;
  w_floor : int;
  w_composite : bool;
  w_cb : update -> unit;
  mutable w_seen : int;  (* store length (or composite level) last fired at *)
  mutable w_open : bool;
}

type handle = Query of progress | Watch of watcher

type metrics = {
  g_open : Mde_obs.Gauge.t;
  g_watchers : Mde_obs.Gauge.t;
  c_ticks : Mde_obs.Counter.t;
  c_fresh : Mde_obs.Counter.t;
  c_reused : Mde_obs.Counter.t;
  h_halfwidth : Mde_obs.Histogram.t;
}

type t = {
  mutable target : Target.t;
  planner : planner;
  config : config;
  entries : (string, entry) Hashtbl.t;
  centries : (string, centry) Hashtbl.t;
  mutable queries : progress list;  (* in open order *)
  mutable watchers : watcher list;
  mutable next_id : int;
  mutable rr_last : int;  (* id the round-robin planner allocated to last *)
  mutable ticks : int;
  mutable fresh : int;
  mutable reused : int;
  metrics : metrics;
}

let create ?(planner = Explore) ?(config = default_config) ?obs target =
  if config.tick_reps < 1 then invalid_arg "Session.create: tick_reps must be >= 1";
  if config.min_batch < 1 then invalid_arg "Session.create: min_batch must be >= 1";
  let obs = match obs with Some o -> o | None -> Mde_obs.default () in
  {
    target;
    planner;
    config;
    entries = Hashtbl.create 16;
    centries = Hashtbl.create 4;
    queries = [];
    watchers = [];
    next_id = 0;
    rr_last = -1;
    ticks = 0;
    fresh = 0;
    reused = 0;
    metrics =
      {
        g_open =
          Mde_obs.gauge obs ~help:"Progressive handles neither cancelled nor converged"
            "mde_session_open_handles";
        g_watchers =
          Mde_obs.gauge obs ~help:"Live watch subscriptions" "mde_session_watchers";
        c_ticks =
          Mde_obs.counter obs ~help:"Session planner rounds executed"
            "mde_session_ticks_total";
        c_fresh =
          Mde_obs.counter obs ~help:"Replications spent, by provenance"
            ~labels:[ ("kind", "fresh") ] "mde_session_reps_total";
        c_reused =
          Mde_obs.counter obs ~help:"Replications spent, by provenance"
            ~labels:[ ("kind", "reused") ] "mde_session_reps_total";
        h_halfwidth =
          Mde_obs.histogram obs ~help:"CI half width of emitted progressive updates"
            "mde_session_halfwidth";
      };
  }

let set_gauges t =
  let open_handles =
    List.fold_left
      (fun acc p -> if p.pr_open && p.pr_done < p.pr_total then acc + 1 else acc)
      0 t.queries
  in
  let watchers = List.fold_left (fun acc w -> if w.w_open then acc + 1 else acc) 0 t.watchers in
  Mde_obs.Gauge.set t.metrics.g_open (float_of_int open_handles);
  Mde_obs.Gauge.set t.metrics.g_watchers (float_of_int watchers)

let is_composite (request : Server.request) =
  match request.Server.kind with Server.Composite_estimate _ -> true | _ -> false

let entry_of t (p : progress) =
  match Hashtbl.find_opt t.entries p.pr_key with
  | Some e -> e
  | None ->
    let e = { e_request = p.pr_request; buf = [||]; len = 0; vcount = 0; vmean = 0.; vm2 = 0. } in
    Hashtbl.replace t.entries p.pr_key e;
    e

let centry_of t key =
  match Hashtbl.find_opt t.centries key with
  | Some c -> c
  | None ->
    let c = { levels = [] } in
    Hashtbl.replace t.centries key c;
    c

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let open_query t request =
  (* Key computation validates the request against the target's models. *)
  let key = Target.refinement_key t.target request in
  let p =
    {
      pr_id = fresh_id t;
      pr_request = request;
      pr_key = key;
      pr_total = Server.units_of request.Server.kind;
      pr_floor = Server.floor_units request.Server.kind;
      pr_composite = is_composite request;
      pr_done = 0;
      pr_reused = 0;
      pr_last = None;
      pr_open = true;
    }
  in
  t.queries <- t.queries @ [ p ];
  set_gauges t;
  Query p

let watch t request cb =
  let key = Target.refinement_key t.target request in
  let w =
    {
      w_id = fresh_id t;
      w_request = request;
      w_key = key;
      w_total = Server.units_of request.Server.kind;
      w_floor = Server.floor_units request.Server.kind;
      w_composite = is_composite request;
      w_cb = cb;
      w_seen = 0;
      w_open = true;
    }
  in
  t.watchers <- t.watchers @ [ w ];
  set_gauges t;
  Watch w

let id = function Query p -> p.pr_id | Watch w -> w.w_id

let cancel t handle =
  (match handle with
  | Query p -> p.pr_open <- false
  | Watch w -> w.w_open <- false);
  set_gauges t

(* --- estimates --- *)

let half_width_of = function
  | Some (lo, hi) -> (hi -. lo) /. 2.
  | None -> nan

(* Exactly the one-shot execution paths ([Server.execute]) over the
   stream prefix: mean kinds through [Estimator.of_samples], tail kinds
   through [Estimator.tail_estimate] — so a converged prefix yields the
   one-shot bits. *)
let sample_estimate (request : Server.request) xs =
  match request.Server.kind with
  | Server.Mcdb_mean _ | Server.Chain_mean _ ->
    let est = Est.of_samples xs in
    (est.Est.mean, Some est.Est.ci95)
  | Server.Mcdb_tail { p; _ } ->
    let q, ci = Est.tail_estimate xs ~p ~level:0.95 in
    (q, Some ci)
  | Server.Composite_estimate _ -> assert false (* composite handles never get here *)

let make_update ~id ~value ~ci95 ~reps_done ~reps_total ~reps_reused =
  {
    id;
    value;
    ci95;
    half_width = half_width_of ci95;
    reps_done;
    reps_total;
    reps_reused;
    converged = reps_done >= reps_total;
  }

let progress_update t (p : progress) =
  if p.pr_done < p.pr_floor || p.pr_done < 1 then None
  else if p.pr_composite then
    match List.assoc_opt p.pr_done (centry_of t p.pr_key).levels with
    | None -> None
    | Some value ->
      Some
        (make_update ~id:p.pr_id ~value ~ci95:None ~reps_done:p.pr_done
           ~reps_total:p.pr_total ~reps_reused:p.pr_reused)
  else
    let entry = entry_of t p in
    let xs = Array.sub entry.buf 0 p.pr_done in
    let value, ci95 = sample_estimate p.pr_request xs in
    Some
      (make_update ~id:p.pr_id ~value ~ci95 ~reps_done:p.pr_done ~reps_total:p.pr_total
         ~reps_reused:p.pr_reused)

let estimate t = function
  | Query p -> progress_update t p
  | Watch w ->
    if w.w_composite then
      (* The largest served level within the watcher's budget. *)
      List.fold_left
        (fun best (level, value) ->
          if level > w.w_total then best
          else
            match best with
            | Some (l, _) when l >= level -> best
            | _ -> Some (level, value))
        None
        (centry_of t w.w_key).levels
      |> Option.map (fun (level, value) ->
             make_update ~id:w.w_id ~value ~ci95:None ~reps_done:level
               ~reps_total:w.w_total ~reps_reused:0)
    else
      match Hashtbl.find_opt t.entries w.w_key with
      | None -> None
      | Some entry ->
        let n = Stdlib.min entry.len w.w_total in
        if n < w.w_floor || n < 1 then None
        else
          let value, ci95 = sample_estimate w.w_request (Array.sub entry.buf 0 n) in
          Some
            (make_update ~id:w.w_id ~value ~ci95 ~reps_done:n ~reps_total:w.w_total
               ~reps_reused:0)

(* --- the sample store --- *)

let welford entry x =
  entry.vcount <- entry.vcount + 1;
  let delta = x -. entry.vmean in
  entry.vmean <- entry.vmean +. (delta /. float_of_int entry.vcount);
  entry.vm2 <- entry.vm2 +. (delta *. (x -. entry.vmean))

let append_samples entry xs =
  let n = Array.length xs in
  let needed = entry.len + n in
  if Array.length entry.buf < needed then begin
    let grown = Array.make (Stdlib.max needed (2 * Array.length entry.buf)) nan in
    Array.blit entry.buf 0 grown 0 entry.len;
    entry.buf <- grown
  end;
  Array.blit xs 0 entry.buf entry.len n;
  entry.len <- needed;
  Array.iter (fun x -> welford entry x) xs

(* Fire every watcher that gained new replications (or a new composite
   level) — exactly once per landed batch, never on reuse-only
   progress. *)
let fire_sample_watchers t key entry =
  List.iter
    (fun w ->
      if w.w_open && (not w.w_composite) && w.w_key = key then begin
        let n = Stdlib.min entry.len w.w_total in
        if n > w.w_seen && n >= w.w_floor then begin
          w.w_seen <- n;
          let value, ci95 = sample_estimate w.w_request (Array.sub entry.buf 0 n) in
          w.w_cb
            (make_update ~id:w.w_id ~value ~ci95 ~reps_done:n ~reps_total:w.w_total
               ~reps_reused:0)
        end
      end)
    t.watchers

let fire_composite_watchers t key ~level ~value =
  List.iter
    (fun w ->
      if w.w_open && w.w_composite && w.w_key = key && level <= w.w_total
         && level > w.w_seen
      then begin
        w.w_seen <- level;
        w.w_cb
          (make_update ~id:w.w_id ~value ~ci95:None ~reps_done:level ~reps_total:w.w_total
             ~reps_reused:0)
      end)
    t.watchers

(* --- planners --- *)

let remaining p = p.pr_total - p.pr_done

(* The allocation a batch for [p] would get out of [budget]: composite
   handles must reach at least their floor level in one step (an
   estimate below it is not servable). *)
let batch_for t p ~budget =
  let want = Stdlib.min t.config.min_batch (Stdlib.min (remaining p) budget) in
  if p.pr_composite && p.pr_done = 0 then
    let first = Stdlib.min (remaining p) (Stdlib.max want p.pr_floor) in
    if first <= budget then first else 0
  else want

let runnable t p ~budget = p.pr_open && remaining p > 0 && batch_for t p ~budget > 0

let cached_available t p =
  if p.pr_composite then
    (* Any cached level past the cursor (within the total) can be
       adopted wholesale. *)
    List.fold_left
      (fun acc (level, _) ->
        if level > p.pr_done && level <= p.pr_total then Stdlib.max acc (level - p.pr_done)
        else acc)
      0 (centry_of t p.pr_key).levels
  else
    match Hashtbl.find_opt t.entries p.pr_key with
    | None -> 0
    | Some entry -> Stdlib.max 0 (entry.len - p.pr_done)

(* The g(α) price of a candidate batch, in fresh-replication units: the
   budget is denominated in replications, so costs are rep-normalized
   (one fresh rep costs 1, an adopted cached rep costs ~0) and the
   batch's cached share plays the repeat fraction. [efficiency_gain]
   then says how far caching stretches this class's budget; dividing
   the fresh cost by it steers spend toward reuse-rich handles exactly
   when the theory says reuse pays. *)
let effective_cost t p ~want =
  let cached = Stdlib.min want (cached_available t p) in
  let fresh = want - cached in
  if fresh = 0 then 1e-3 (* pure adoption: essentially free *)
  else
    let gain =
      if cached = 0 then 1.
      else
        let result_variance =
          match Hashtbl.find_opt t.entries p.pr_key with
          | Some e when e.vcount >= 2 -> e.vm2 /. float_of_int (e.vcount - 1)
          | _ -> 0.
        in
        let stats =
          Cache.class_statistics ~compute_cost:1. ~serve_cost:0. ~result_variance
            ~repeat_fraction:(float_of_int cached /. float_of_int want)
        in
        if Cache.pays_off ~min_gain:t.config.min_gain stats then Rc.efficiency_gain stats
        else 1.
    in
    float_of_int fresh /. gain

(* Expected CI shrinkage of advancing [p] by [want] reps: half width
   scales ~ 1/√n, so the expected drop is hw·(1 − √(n/(n+want))).
   Handles below their floor score infinite (an estimate must exist
   before refinement means anything); composite handles — no CI — use a
   scale-free 1/√n proxy. *)
let expected_shrink (p : progress) ~want =
  if p.pr_done < p.pr_floor then infinity
  else
    let hw =
      match p.pr_last with
      | Some u when Float.is_finite u.half_width -> u.half_width
      | _ -> 1. /. sqrt (float_of_int (Stdlib.max 1 p.pr_done))
    in
    let n = float_of_int p.pr_done and b = float_of_int want in
    hw *. (1. -. sqrt (n /. (n +. b)))

let pick_explore t ~budget =
  List.fold_left
    (fun best p ->
      if not (runnable t p ~budget) then best
      else
        let want = batch_for t p ~budget in
        let score = expected_shrink p ~want /. effective_cost t p ~want in
        match best with
        | Some (_, best_score) when best_score >= score -> best
        | _ -> Some (p, score))
    None t.queries
  |> Option.map fst

(* Uniform rotation in handle-id order, resuming after the last
   allocation — each runnable handle gets one batch per cycle. *)
let pick_round_robin t ~budget =
  let candidates = List.filter (fun p -> runnable t p ~budget) t.queries in
  match candidates with
  | [] -> None
  | _ -> (
    match List.find_opt (fun p -> p.pr_id > t.rr_last) candidates with
    | Some p -> Some p
    | None -> Some (List.hd candidates))

let pick t ~budget =
  match t.planner with
  | Explore -> pick_explore t ~budget
  | Round_robin -> pick_round_robin t ~budget

(* --- execution --- *)

exception Target_dropped

(* Advance a composite handle to [level] by re-serving through the
   target (or adopting a cached level). Returns the served value. *)
let composite_level t (p : progress) ~level =
  let centry = centry_of t p.pr_key in
  match List.assoc_opt level centry.levels with
  | Some value -> value
  | None -> (
    let request =
      match p.pr_request.Server.kind with
      | Server.Composite_estimate { alpha; _ } ->
        { p.pr_request with Server.kind = Server.Composite_estimate { n = level; alpha } }
      | _ -> assert false
    in
    match Target.serve t.target request with
    | `Dropped -> raise Target_dropped
    | `Served resp ->
      centry.levels <- (level, resp.Server.value) :: centry.levels;
      fire_composite_watchers t p.pr_key ~level ~value:resp.Server.value;
      resp.Server.value)

(* Run one allocation for [p]: adopt cached replications past the
   cursor, draw the remainder fresh, advance, and account. Returns the
   reps actually spent (0 if the target dropped a composite re-serve). *)
let run_batch t (p : progress) ~want =
  if p.pr_composite then begin
    let level = p.pr_done + want in
    let cached = List.mem_assoc level (centry_of t p.pr_key).levels in
    match composite_level t p ~level with
    | exception Target_dropped -> 0
    | _ ->
      p.pr_done <- level;
      if cached then begin
        p.pr_reused <- p.pr_reused + want;
        t.reused <- t.reused + want;
        Mde_obs.Counter.add t.metrics.c_reused want
      end
      else begin
        t.fresh <- t.fresh + want;
        Mde_obs.Counter.add t.metrics.c_fresh want
      end;
      want
  end
  else begin
    let entry = entry_of t p in
    let reuse = Stdlib.min want (Stdlib.max 0 (entry.len - p.pr_done)) in
    let fresh = want - reuse in
    if fresh > 0 then begin
      let lo = entry.len in
      let xs = Target.refine t.target p.pr_request ~lo ~hi:(lo + fresh) in
      append_samples entry xs;
      fire_sample_watchers t p.pr_key entry
    end;
    p.pr_done <- p.pr_done + want;
    p.pr_reused <- p.pr_reused + reuse;
    t.fresh <- t.fresh + fresh;
    t.reused <- t.reused + reuse;
    Mde_obs.Counter.add t.metrics.c_fresh fresh;
    Mde_obs.Counter.add t.metrics.c_reused reuse;
    want
  end

let tick t =
  t.ticks <- t.ticks + 1;
  Mde_obs.Counter.incr t.metrics.c_ticks;
  let budget = ref t.config.tick_reps in
  let touched = Hashtbl.create 8 in
  let continue_ = ref true in
  while !budget > 0 && !continue_ do
    match pick t ~budget:!budget with
    | None -> continue_ := false
    | Some p -> (
      let want = batch_for t p ~budget:!budget in
      t.rr_last <- p.pr_id;
      match run_batch t p ~want with
      | 0 -> continue_ := false (* target dropped; no progress possible now *)
      | spent ->
        budget := !budget - spent;
        Hashtbl.replace touched p.pr_id p)
  done;
  let updates =
    Hashtbl.fold (fun _ p acc -> p :: acc) touched []
    |> List.sort (fun a b -> compare a.pr_id b.pr_id)
    |> List.filter_map (fun p ->
           let u = progress_update t p in
           p.pr_last <- u;
           u)
  in
  List.iter
    (fun u ->
      if Float.is_finite u.half_width then
        Mde_obs.Histogram.observe t.metrics.h_halfwidth u.half_width)
    updates;
  set_gauges t;
  updates

let drive ?(max_ticks = 10_000) t =
  let all_converged () =
    List.for_all (fun p -> (not p.pr_open) || remaining p = 0) t.queries
  in
  let rec go k =
    if all_converged () then
      List.filter_map
        (fun p -> if p.pr_open then progress_update t p else None)
        t.queries
    else if k >= max_ticks then
      failwith (Printf.sprintf "Session.drive: not converged after %d ticks" k)
    else begin
      let spent_before = t.fresh + t.reused in
      ignore (tick t);
      if t.fresh + t.reused = spent_before && not (all_converged ()) then
        failwith "Session.drive: no progress (dropped re-serves or watch-only session)";
      go (k + 1)
    end
  in
  go 0

let retarget t target = t.target <- target

type stats = {
  handles_open : int;
  watchers : int;
  ticks : int;
  fresh_reps : int;
  reused_reps : int;
}

let stats t =
  {
    handles_open =
      List.fold_left
        (fun acc p -> if p.pr_open && remaining p > 0 then acc + 1 else acc)
        0 t.queries;
    watchers =
      List.fold_left (fun acc w -> if w.w_open then acc + 1 else acc) 0 t.watchers;
    ticks = t.ticks;
    fresh_reps = t.fresh;
    reused_reps = t.reused;
  }
