module Rng = Mde_prob.Rng

type config = { requests : int; concurrency : int; zipf_s : float; seed : int }

type report = {
  issued : int;
  served : int;
  rejected : int;
  degraded : int;
  hits : int;
  elapsed : float;
  throughput : float;
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;
  hit_rate : float;
  rejection_rate : float;
}

let zipf_cdf ~s ~n =
  if n < 1 then invalid_arg "Workload.zipf_cdf: n must be >= 1";
  if s < 0. then invalid_arg "Workload.zipf_cdf: s must be >= 0";
  let weights = Array.init n (fun r -> 1. /. (float_of_int (r + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let acc = ref 0. in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let zipf_sample rng cdf =
  let u = Rng.float rng in
  (* First rank whose cumulative probability exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

(* Nearest-rank percentile of a pre-sorted sample. The empty check is a
   real branch, not an assert: it must survive `--profile noassert`. *)
let percentile_sorted sorted q =
  match Array.length sorted with
  | 0 -> invalid_arg "Workload.percentile: empty sample array"
  | n ->
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))

let percentile xs q =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted q

let percentiles xs qs =
  if Array.length xs = 0 then invalid_arg "Workload.percentiles: empty sample array";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  Array.map (percentile_sorted sorted) qs

(* The reports document nan percentiles when nothing was served; only
   explicit [percentile]/[percentiles] calls reject empty samples. *)
let report_percentiles latencies =
  if Array.length latencies = 0 then [| nan; nan; nan |]
  else percentiles latencies [| 0.50; 0.95; 0.99 |]

(* --- open loop --- *)

type target = Target.t

let server_target = Target.of_server
let shard_target = Target.of_shard

type open_config = { arrivals : int; rate : float; zipf_s : float; seed : int }

type open_report = {
  offered : int;
  offered_rate : float;
  served : int;
  shed : int;
  degraded : int;
  hits : int;
  elapsed : float;
  throughput : float;
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;
  shed_rate : float;
}

let run_open ?(clock = Mde_obs.Clock.wall) target ~catalog (config : open_config) =
  if Array.length catalog = 0 then invalid_arg "Workload.run_open: empty catalog";
  if config.arrivals < 1 then invalid_arg "Workload.run_open: arrivals must be >= 1";
  if not (config.rate > 0.) then invalid_arg "Workload.run_open: rate must be positive";
  let rng = Rng.create ~seed:config.seed () in
  let cdf = zipf_cdf ~s:config.zipf_s ~n:(Array.length catalog) in
  (* The whole arrival process — exponential interarrival gaps at [rate]
     (a Poisson process) and a Zipf catalog pick per arrival — is fixed
     by the seed before the first submission, so it can never depend on
     how the target behaves (the defining property of an open loop). *)
  let schedule =
    let time = ref 0. in
    Array.init config.arrivals (fun _ ->
        time := !time +. (-.log (Rng.float_pos rng) /. config.rate);
        (!time, zipf_sample rng cdf))
  in
  let responses = Array.make config.arrivals None in
  let shed = ref 0 in
  let outstanding = ref 0 in
  let ids = Hashtbl.create 64 in
  let next = ref 0 in
  let t0 = clock () in
  while !next < config.arrivals || !outstanding > 0 do
    let now = clock () -. t0 in
    (* Submit every arrival whose time has come, whether or not earlier
       requests completed — under overload this bunches arrivals into
       bursts that fill the bounded queues and trigger shedding. *)
    while !next < config.arrivals && fst schedule.(!next) <= now do
      let index = !next in
      incr next;
      match Target.submit target catalog.(snd schedule.(index)) with
      | `Queued id ->
        Hashtbl.replace ids id index;
        incr outstanding
      | `Dropped -> incr shed
    done;
    if !outstanding > 0 then
      List.iter
        (fun (id, resp) ->
          responses.(Hashtbl.find ids id) <- Some resp;
          decr outstanding)
        (Target.drain target)
    (* else: spin on the clock until the next arrival is due. *)
  done;
  let elapsed = clock () -. t0 in
  let latencies =
    Array.of_seq
      (Seq.filter_map
         (Option.map (fun (r : Server.response) -> r.Server.latency))
         (Array.to_seq responses))
  in
  let served = Array.length latencies in
  let count pred =
    Array.fold_left
      (fun acc -> function Some r when pred r -> acc + 1 | _ -> acc)
      0 responses
  in
  let ps = report_percentiles latencies in
  ( {
      offered = config.arrivals;
      offered_rate = config.rate;
      served;
      shed = !shed;
      degraded = count (fun r -> r.Server.degraded);
      hits = count (fun r -> r.Server.cache = Server.Hit);
      elapsed;
      throughput = (if elapsed > 0. then float_of_int served /. elapsed else infinity);
      mean_latency =
        (if served = 0 then nan
         else Array.fold_left ( +. ) 0. latencies /. float_of_int served);
      p50 = ps.(0);
      p95 = ps.(1);
      p99 = ps.(2);
      shed_rate =
        (if config.arrivals = 0 then 0.
         else float_of_int !shed /. float_of_int config.arrivals);
    },
    responses )

let run ?(clock = Mde_obs.Clock.wall) target ~catalog config =
  if Array.length catalog = 0 then invalid_arg "Workload.run: empty catalog";
  if config.requests < 1 then invalid_arg "Workload.run: requests must be >= 1";
  if config.concurrency < 1 then invalid_arg "Workload.run: concurrency must be >= 1";
  let rng = Rng.create ~seed:config.seed () in
  let cdf = zipf_cdf ~s:config.zipf_s ~n:(Array.length catalog) in
  let responses = Array.make config.requests None in
  let rejected = ref 0 in
  let issued = ref 0 in
  let t0 = clock () in
  while !issued < config.requests do
    let round = Stdlib.min config.concurrency (config.requests - !issued) in
    (* Submit the round's requests (closed loop: nothing new until the
       batch drains), remembering which workload index each id serves. *)
    let ids = Hashtbl.create round in
    for _ = 1 to round do
      let index = !issued in
      incr issued;
      let request = catalog.(zipf_sample rng cdf) in
      match Target.submit target request with
      | `Queued id -> Hashtbl.replace ids id index
      | `Dropped -> incr rejected
    done;
    List.iter
      (fun (id, resp) -> responses.(Hashtbl.find ids id) <- Some resp)
      (Target.drain target)
  done;
  let elapsed = clock () -. t0 in
  let latencies =
    Array.of_seq
      (Seq.filter_map
         (Option.map (fun (r : Server.response) -> r.Server.latency))
         (Array.to_seq responses))
  in
  let served = Array.length latencies in
  let count pred =
    Array.fold_left
      (fun acc -> function Some r when pred r -> acc + 1 | _ -> acc)
      0 responses
  in
  let hits = count (fun r -> r.Server.cache = Server.Hit) in
  let degraded = count (fun r -> r.Server.degraded) in
  (* One sort serves all three report percentiles. *)
  let ps = report_percentiles latencies in
  {
    issued = !issued;
    served;
    rejected = !rejected;
    degraded;
    hits;
    elapsed;
    throughput = (if elapsed > 0. then float_of_int served /. elapsed else infinity);
    mean_latency =
      (if served = 0 then nan
       else Array.fold_left ( +. ) 0. latencies /. float_of_int served);
    p50 = ps.(0);
    p95 = ps.(1);
    p99 = ps.(2);
    hit_rate = (if served = 0 then 0. else float_of_int hits /. float_of_int served);
    rejection_rate =
      (if !issued = 0 then 0. else float_of_int !rejected /. float_of_int !issued);
  },
  responses
