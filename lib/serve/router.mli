(** Consistent rendezvous (highest-random-weight) routing of canonical
    query fingerprints across serving shards.

    Every (key, shard) pair gets a deterministic 64-bit weight from a
    seeded mix of the key's hash and the shard index; a key routes to
    the shard with the greatest weight. Unlike modulo hashing, this is
    {e minimally disruptive}: growing a front from [n] to [n + 1] shards
    remaps exactly the keys whose new shard's weight beats every old
    one — in expectation K/(n+1) of K keys — and shrinking it remaps
    only the keys that lived on the removed shard. Cache affinity
    therefore survives resizes: ≈(1 − 1/n) of the warmed fingerprints
    keep their shard, where modulo hashing would scatter nearly all of
    them.

    The hash is a self-contained FNV-1a/splitmix64 mix — independent of
    [Hashtbl.hash] and of the process — so a fingerprint routes to the
    same shard in every run, every process, and every test. *)

type t

val create : shards:int -> t
(** A router over shard indices [0 .. shards - 1]. Raises
    [Invalid_argument] if [shards < 1] — an empty front cannot route. *)

val shards : t -> int

val route : t -> string -> int
(** The shard a key lives on. Deterministic: equal keys always route
    equally, on every router of the same size. *)

val resize : t -> shards:int -> t
(** A router over the new shard count; shares nothing with [t] but the
    weight function, so keys whose argmax shard survives the resize keep
    routing to it. Raises [Invalid_argument] if [shards < 1]. *)

val weight : key:string -> shard:int -> int64
(** The rendezvous weight the argmax runs over — exposed so property
    tests can verify [route] against a reference argmax. Compared
    unsigned. *)

val hash64 : string -> int64
(** The 64-bit FNV-1a key hash feeding {!weight}. Stable across runs. *)
