(** The standard serving demo: one server wired with the headline models
    (the paper's SBP_DATA Monte Carlo database, a random-walk SimSQL
    chain, a two-stage demand→service composite) plus a catalog builder
    and the cold/warm benchmark pass — shared by [mde_cli serve-bench],
    the bench harness and the tests so they all measure the same thing. *)

val server :
  ?pool:Mde_par.Pool.t ->
  ?impl:Mde_relational.Impl.t ->
  ?clock:(unit -> float) ->
  ?cache_capacity:int ->
  ?cache_ttl:float ->
  ?scheduler:Scheduler.config ->
  ?admission:Server.admission ->
  ?rows:int ->
  unit ->
  Server.t
(** A fresh server with models ["sbp"] (MCDB over a [rows]-row patient
    table, default 120), ["sbp_bundle"] (the same database served through
    the columnar tuple-bundle engine via {!sbp_plan} — bit-identical
    answers, one VG sweep instead of one realization per repetition),
    ["walk"] (SimSQL chain) and ["queue"] (two-stage composite)
    registered. *)

val front :
  ?pool:Mde_par.Pool.t ->
  ?impl:Mde_relational.Impl.t ->
  ?clock:(unit -> float) ->
  ?cache_capacity:int ->
  ?cache_ttl:float ->
  ?scheduler:Scheduler.config ->
  ?admission:Server.admission ->
  ?high_water:int ->
  ?rows:int ->
  shards:int ->
  unit ->
  Shard.t
(** The sharded twin of {!server}: a {!Shard} front with the same four
    models registered on every shard, plus the federated name
    ["sbp_any"] ({!Shard.federate} over ["sbp_bundle"] then ["sbp"]) —
    so the same demo catalog drives either target, and the federation
    path is exercised by requests addressed to ["sbp_any"]. *)

val mean_sbp : Mde_relational.Catalog.t -> float
(** The query behind ["sbp"]: global Avg(sbp) over the realized SBP_DATA
    instance, executed on the unified columnar substrate
    ({!Mde_relational.Columnar.group_by}). Bit-identical to
    {!mean_sbp_rows}. *)

val mean_sbp_rows : Mde_relational.Catalog.t -> float
(** The hand-rolled row fold the columnar {!mean_sbp} replaced — kept as
    the oracle for the serving bit-identity test. *)

val sbp_plan : Mde_mcdb.Bundle.plan
(** Per-repetition Avg(sbp) over SBP_DATA — the bundle plan behind
    ["sbp_bundle"], accumulating rows in the same order as the naive
    query so the two models' samples match bit for bit. *)

val catalog : ?deadline:float -> int -> Server.request array
(** [catalog size] builds [size] distinct request templates cycling over
    the query kinds (including the columnar ["sbp_bundle"] path),
    each with its own seed (so fingerprints are pairwise distinct). Index
    order is the popularity rank order a Zipf workload samples from. *)

val cold_warm :
  ?clock:(unit -> float) ->
  Target.t ->
  catalog:Server.request array ->
  Workload.config ->
  Workload.report * Workload.report * [ `Identical of int | `Mismatch of int ]
(** Run the identical workload twice against one target — first cold,
    then with whatever the first pass cached — and compare the two
    passes' responses bit-for-bit over every request index served in
    both passes without deadline degradation. [`Identical n] means all
    [n] compared pairs matched exactly (value and CI). *)
