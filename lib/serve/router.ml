type t = { shards : int }

(* FNV-1a over the key bytes: cheap, stable across runs and processes
   (unlike [Hashtbl.hash], whose output is version-dependent), and good
   enough once finished through splitmix64 below. *)
let hash64 s =
  let offset_basis = 0xcbf29ce484222325L and prime = 0x100000001b3L in
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* splitmix64 finalizer: turns the correlated (key-hash, shard) pairs
   into independent-looking 64-bit weights. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let weight ~key ~shard =
  (* Golden-ratio stride decorrelates consecutive shard indices before
     the finishing mix. *)
  mix (Int64.logxor (hash64 key) (Int64.mul (Int64.of_int (shard + 1)) 0x9e3779b97f4a7c15L))

let create ~shards =
  if shards < 1 then invalid_arg "Router.create: shards must be >= 1";
  { shards }

let shards t = t.shards
let resize _t ~shards = create ~shards

let route t key =
  (* Highest-random-weight wins; unsigned comparison so the sign bit is
     just another weight bit. *)
  let best = ref 0 and best_w = ref (weight ~key ~shard:0) in
  for shard = 1 to t.shards - 1 do
    let w = weight ~key ~shard in
    if Int64.unsigned_compare w !best_w > 0 then begin
      best := shard;
      best_w := w
    end
  done;
  !best
