(** Bounded request queue with backpressure, micro-batching and deadline
    budgets — the execution stage of the serving layer.

    Requests enter through {!submit}; past the queue's high-water mark
    they are rejected immediately (backpressure) rather than queued
    without bound. {!drain} then executes everything queued: compatible
    requests (same [class_key]) are fused, in arrival order, into batches
    of at most [batch_size] and each batch runs as a single fan-out over
    {!Mde_par.Pool}. Work items must be self-contained (own RNG stream
    derived from the request seed), so by the pool's determinism contract
    a batched, pooled execution is bit-identical to running each item's
    closure directly.

    Deadlines: a request may carry a relative deadline (seconds on the
    scheduler's clock). The scheduler converts it to an absolute point at
    submission and, when the item is dispatched, hands the closure its
    remaining budget [time_left] (possibly ≤ 0 if the request sat in the
    queue past its deadline). Degradation policy — e.g. running fewer
    Monte Carlo replications to fit the budget — belongs to the caller's
    closure; the scheduler only accounts and forwards budgets. *)

type config = {
  queue_capacity : int;  (** high-water mark; submissions beyond it are rejected *)
  batch_size : int;  (** max compatible requests fused into one pool fan-out *)
}

val default_config : config
(** [{ queue_capacity = 64; batch_size = 8 }] *)

type 'a t

type 'a completion = {
  ticket : int;
  result : 'a;
  latency : float;  (** submission → batch completion, in clock units *)
}

type counters = {
  submitted : int;  (** accepted submissions *)
  rejected : int;  (** backpressure rejections *)
  completed : int;
  failed : int;  (** requests whose closure raised during {!drain} *)
  batches : int;  (** pool fan-outs executed *)
  abandoned : int;  (** accepted items never executed, dropped by {!shutdown} *)
}

val create :
  ?pool:Mde_par.Pool.t -> ?clock:(unit -> float) -> ?obs:Mde_obs.t -> config -> 'a t
(** Without [?pool], batches run sequentially on the caller (identical
    results, no parallelism). [clock] defaults to {!Mde_obs.Clock.wall} —
    elapsed wall time, so a deadline keeps draining while a request sits
    in the queue; the previous default, [Sys.time], counted CPU seconds
    and stood still whenever the process slept or waited. [obs] (default
    {!Mde_obs.default}) registers a queue-depth gauge
    ([mde_sched_queue_depth]), a batch-size histogram
    ([mde_sched_batch_size]) and a rejection counter
    ([mde_sched_rejections_total]). Raises [Invalid_argument] on
    non-positive capacity or batch size. *)

val submit :
  'a t ->
  class_key:string ->
  ?deadline:float ->
  (time_left:float option -> 'a) ->
  [ `Accepted of int | `Rejected ]
(** Enqueue a work item, or reject it if the queue is at its high-water
    mark. [`Accepted ticket] identifies the item in {!drain}'s
    completions. The closure runs on a pool domain: it must not mutate
    shared state. *)

val pending : 'a t -> int

val pool : 'a t -> Mde_par.Pool.t option
(** The pool batches fan out over, if any — the hook {!Server} uses to
    run out-of-band work (progressive-refinement replication batches) on
    the same domains as queued requests instead of threading a second
    copy of the pool through the stack. *)

val drain : 'a t -> 'a completion list
(** Execute every queued item (batching as described above) and return
    completions in ticket order. Empty queue returns [].

    Exception safety: every item's outcome is captured individually, so
    one raising closure cannot destroy accepted work. If any closure
    raises, the drain stops after that batch, the first exception (in
    ticket order within the batch) propagates with its backtrace, the
    unprocessed remainder of the queue is preserved, the failing
    request is counted in [counters.failed], and {e all} completions
    already collected — including the failing request's batch siblings
    — are delivered by the next [drain] call. *)

val shutdown : 'a t -> 'a completion list
(** Close the scheduler and deliver, in ticket order, any completions a
    failed {!drain} banked — work that was fully executed but whose
    results would otherwise be silently lost if the scheduler were
    dropped before the next drain. Queued items that never ran are
    dropped and counted in [counters.abandoned] (so every accepted
    submission is accounted exactly once as completed, failed or
    abandoned). Idempotent: later calls return []. After shutdown,
    {!submit} raises [Invalid_argument] and {!drain} returns []. *)

val counters : 'a t -> counters
