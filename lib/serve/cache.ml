module Rc = Mde_composite.Result_cache

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable expires : float;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  expirations : int;
  admission_rejections : int;
}

(* The exact mutable counters below stay authoritative (tests assert on
   them); the registry counters mirror them so one exporter sees the
   cache next to the scheduler and the pool. *)
type metrics = {
  m_hits : Mde_obs.Counter.t;
  m_misses : Mde_obs.Counter.t;
  m_evictions : Mde_obs.Counter.t;
  m_expirations : Mde_obs.Counter.t;
  m_admission_rejections : Mde_obs.Counter.t;
}

type 'a t = {
  cap : int;
  ttl : float;
  clock : unit -> float;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used: next eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable expirations : int;
  mutable admission_rejections : int;
  metrics : metrics;
}

let create ?obs ?(capacity = 256) ?(ttl = infinity) ?(clock = Mde_obs.Clock.wall) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  if not (ttl > 0.) then invalid_arg "Cache.create: ttl must be positive";
  let obs = match obs with Some o -> o | None -> Mde_obs.default () in
  let c name help = Mde_obs.counter obs ~help name in
  {
    cap = capacity;
    ttl;
    clock;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    expirations = 0;
    admission_rejections = 0;
    metrics =
      {
        m_hits = c "mde_serve_cache_hits_total" "Cache lookups that returned a value";
        m_misses = c "mde_serve_cache_misses_total" "Cache lookups that found nothing";
        m_evictions = c "mde_serve_cache_evictions_total" "LRU capacity evictions";
        m_expirations = c "mde_serve_cache_expirations_total" "TTL expirations";
        m_admission_rejections =
          c "mde_serve_cache_admission_rejections_total"
            "Results dropped by cost-aware admission";
      };
  }

let detach t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let delete t node =
  detach t node;
  Hashtbl.remove t.tbl node.key

let length t = Hashtbl.length t.tbl
let capacity t = t.cap
let expired t node = t.clock () > node.expires

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    Mde_obs.Counter.incr t.metrics.m_misses;
    None
  | Some node when expired t node ->
    delete t node;
    t.expirations <- t.expirations + 1;
    t.misses <- t.misses + 1;
    Mde_obs.Counter.incr t.metrics.m_expirations;
    Mde_obs.Counter.incr t.metrics.m_misses;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    Mde_obs.Counter.incr t.metrics.m_hits;
    detach t node;
    push_front t node;
    Some node.value

let add t ?(admit = true) key value =
  if not admit then begin
    t.admission_rejections <- t.admission_rejections + 1;
    Mde_obs.Counter.incr t.metrics.m_admission_rejections
  end
  else
    match Hashtbl.find_opt t.tbl key with
    | Some node ->
      node.value <- value;
      node.expires <- t.clock () +. t.ttl;
      detach t node;
      push_front t node
    | None ->
      if length t >= t.cap then (
        match t.tail with
        | Some lru ->
          (* A dead-on-arrival tail is an expiration, not a capacity
             eviction — the slot was already free in TTL terms, and
             counter totals must not depend on whether a probe noticed
             the expiry first. *)
          let was_expired = expired t lru in
          delete t lru;
          if was_expired then begin
            t.expirations <- t.expirations + 1;
            Mde_obs.Counter.incr t.metrics.m_expirations
          end
          else begin
            t.evictions <- t.evictions + 1;
            Mde_obs.Counter.incr t.metrics.m_evictions
          end
        | None -> ());
      let node = { key; value; expires = t.clock () +. t.ttl; prev = None; next = None } in
      Hashtbl.replace t.tbl key node;
      push_front t node

(* [mem] deletes and counts an expired entry exactly as [find] does
   (minus the miss — membership is a question, not a lookup), so
   (mem; find) and (find; mem) leave identical counter totals. *)
let mem t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> false
  | Some node when expired t node ->
    delete t node;
    t.expirations <- t.expirations + 1;
    Mde_obs.Counter.incr t.metrics.m_expirations;
    false
  | Some _ -> true

let keys_mru_first t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.head

let counters t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    expirations = t.expirations;
    admission_rejections = t.admission_rejections;
  }

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let clamp lo hi x = Float.max lo (Float.min hi x)

let class_statistics ~compute_cost ~serve_cost ~result_variance ~repeat_fraction =
  let repeat = clamp 0. 1. repeat_fraction in
  let v1 = Float.max 1e-12 result_variance in
  {
    Rc.c1 = Float.max 1e-12 compute_cost;
    c2 = Float.max 1e-12 serve_cost;
    v1;
    v2 = v1 *. (1. -. repeat);
  }

let pays_off ?(min_gain = 1. +. 1e-9) stats = Rc.efficiency_gain stats >= min_gain
