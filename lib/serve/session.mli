(** Progressive-refinement query sessions: the "querying during a
    simulation" workload (paper §2) as a long-lived engine over any
    {!Target}.

    A one-shot server answers a request once, at its full replication
    budget. A session instead keeps queries {e open}: {!open_query}
    returns a handle whose estimate re-emits with a tighter confidence
    interval after every incremental replication batch; {!watch}
    subscribes a callback that fires whenever new replications land for
    its model; and {!tick} spends a fixed replication budget per round,
    chosen by a planner — the GenIE-style budgeted {!Explore} planner
    picks the (handle, reps) batch with the best expected CI shrinkage
    per fresh replication, {!Round_robin} spreads the budget uniformly
    (the baseline the [--session] bench compares against).

    {b Sample reuse and the g(α) split.} Handles with the same
    {!Target.refinement_key} (same model, kind parameters and seed —
    any rep budget) share one growing sample store: a batch first
    adopts the cached replications past the handle's cursor for free,
    then draws the remainder fresh through {!Target.refine}. The
    explorer prices this split with the two-stage result-cache theory
    ({!Mde_composite.Result_cache}): each candidate batch's statistics
    — unit fresh-rep cost, zero reuse cost, the store's observed result
    variance, the batch's cached share as the repeat fraction — go
    through {!Cache.class_statistics}, and the resulting
    {!Mde_composite.Result_cache.efficiency_gain} stretches the
    effective budget of reuse-rich candidates, steering spend toward
    them exactly when g(α) says reuse pays.

    {b Bit-identity contract.} Replication streams are positional
    ({!Server.sample_batch}), so a handle driven to convergence holds
    {e exactly} the samples a one-shot serve at its total rep count
    draws — same estimate, same CI bits — pooled or not, whatever order
    the planner interleaved its batches in, on a single server or a
    sharded front, even across a {!retarget} to a resized front.
    Composite ([Composite_estimate]) handles have no positional streams
    (their RNG is consumed sequentially); the session refines them by
    re-serving at increasing [n] through the target, so their final
    level is one-shot-identical by construction. A composite
    refinement's budget charge is its cursor advance; the re-serve
    recomputes the whole prefix, so its {e wall time} grows with the
    number of levels — keep composite refinement coarse. *)

type planner =
  | Explore  (** budgeted explorer: argmax expected CI shrinkage per
                 effective fresh replication (default) *)
  | Round_robin  (** uniform rotation over unconverged handles — the
                     bench baseline *)

type config = {
  tick_reps : int;  (** replication budget each {!tick} may spend *)
  min_batch : int;  (** allocation granularity (reps per batch) *)
  min_gain : float;  (** g(α) gain below which reuse is priced as fresh *)
}

val default_config : config
(** [{ tick_reps = 64; min_batch = 8; min_gain = 1.0 +. 1e-9 }] *)

type update = {
  id : int;  (** the handle the update belongs to *)
  value : float;
  ci95 : (float * float) option;  (** [None] for composite estimates *)
  half_width : float;  (** of [ci95]; [nan] when [ci95 = None] *)
  reps_done : int;  (** replications behind this estimate *)
  reps_total : int;  (** the handle's convergence point *)
  reps_reused : int;  (** cumulative reps adopted from cached pilots *)
  converged : bool;  (** [reps_done = reps_total] *)
}

type t
type handle

val create :
  ?planner:planner -> ?config:config -> ?obs:Mde_obs.t -> Target.t -> t
(** A session over [target]. [obs] (default {!Mde_obs.default})
    registers [mde_session_open_handles] and [mde_session_watchers]
    gauges, [mde_session_ticks_total] and
    [mde_session_reps_total{kind="fresh"|"reused"}] counters, and an
    [mde_session_halfwidth] histogram observing every emitted CI half
    width. *)

val open_query : t -> Server.request -> handle
(** Open a progressive query: the request's rep count becomes the
    convergence point its estimate refines toward. Nothing executes
    until {!tick}. Raises [Invalid_argument] on malformed requests,
    exactly as {!Server.submit}. *)

val watch : t -> Server.request -> (update -> unit) -> handle
(** Subscribe to the request's replication stream: the callback fires
    exactly once per {e new} batch of replications landing for its
    {!Target.refinement_key} (reuse-only progress fires nothing), with
    the estimate over every landed replication up to the request's rep
    count. A watcher spends no budget of its own — it rides on batches
    that progressive handles (or other sessions' writes to the same
    store) pay for. *)

val id : handle -> int
(** The identifier {!update}s carry; unique within the session. *)

val estimate : t -> handle -> update option
(** The handle's current estimate: [None] until enough replications
    landed ({!Server.floor_units}). Pure — does not execute. *)

val cancel : t -> handle -> unit
(** Close the handle: no further updates, no further budget. Its
    samples stay in the session store for key-mates. Idempotent. *)

val tick : t -> update list
(** Spend up to [config.tick_reps] replications, in [min_batch]-sized
    allocations chosen by the planner, and return the re-emitted
    estimates (at most one per progressive handle that advanced, in
    handle-id order). Watch callbacks fire during the tick. Spends less
    than the budget only when remaining demand is smaller. *)

val drive : ?max_ticks:int -> t -> update list
(** Tick until every open progressive handle converges; returns their
    final updates in handle-id order. These carry exactly the one-shot
    bits (see the contract above). Raises [Failure] after [max_ticks]
    (default 10_000) or when a tick makes no progress (e.g. the target
    drops every composite re-serve, or only watchers are open). *)

val retarget : t -> Target.t -> unit
(** Re-point the session at another target — e.g. a resized shard
    front with the same models registered. Open handles, stores and
    cursors survive as-is; refinement keys must resolve identically on
    the new target (same registrations ⇒ same fingerprints), which the
    next {!tick} checks by raising whatever the new target raises on
    unknown models. *)

type stats = {
  handles_open : int;  (** progressive handles neither cancelled nor converged *)
  watchers : int;  (** live watch subscriptions *)
  ticks : int;
  fresh_reps : int;  (** replications drawn through {!Target.refine} or re-served *)
  reused_reps : int;  (** replications adopted from cached pilots *)
}

val stats : t -> stats
(** [fresh_reps + reused_reps] equals the summed per-tick allocations —
    every allocated replication is accounted exactly once as fresh or
    reused. *)
