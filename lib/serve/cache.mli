(** LRU + TTL memo store for served query results.

    Haas §2.3 develops result caching because simulation queries arrive
    {e repeatedly}; this is the serving-layer counterpart of
    {!Mde_composite.Result_cache}. Entries are keyed by a canonical query
    fingerprint (query kind, parameters, seed — see {!Server.fingerprint}),
    so a hit returns a value bit-identical to recomputation. Recency is
    updated on every hit; capacity overflow evicts the least recently used
    entry; entries older than the TTL expire lazily on lookup. All
    bookkeeping (hits, misses, evictions, expirations, admission
    rejections) is counted exactly.

    The store itself is policy-free: {!add} takes the admission decision
    as an argument, and {!class_statistics}/{!pays_off} translate observed
    per-query-class costs into the paper's g(α) work-variance theory so a
    caller can make that decision cost-aware. *)

type 'a t
(** A mutable cache holding values of type ['a] keyed by fingerprint. *)

type counters = {
  hits : int;
  misses : int;  (** includes lookups that found only an expired entry *)
  evictions : int;  (** LRU evictions due to capacity *)
  expirations : int;  (** entries dropped because their TTL had passed *)
  admission_rejections : int;  (** [add ~admit:false] calls *)
}

val create :
  ?obs:Mde_obs.t ->
  ?capacity:int ->
  ?ttl:float ->
  ?clock:(unit -> float) ->
  unit ->
  'a t
(** [create ~capacity ~ttl ~clock ()] — an empty cache. [capacity]
    (default 256, ≥ 1) bounds the entry count; [ttl] (default [infinity],
    > 0) is the per-entry lifetime in [clock] units; [clock] (default
    {!Mde_obs.Clock.wall} — elapsed time, not the CPU seconds [Sys.time]
    counts) is injectable so TTL behaviour is deterministic under test.
    [obs] (default {!Mde_obs.default}) additionally mirrors the exact
    counters below into registry counters
    ([mde_serve_cache_{hits,misses,evictions,expirations,admission_rejections}_total])
    so one exporter sees the whole serving stack. *)

val find : 'a t -> string -> 'a option
(** Lookup; counts a hit (and refreshes recency) or a miss. A present but
    expired entry is removed and counted as one expiration plus one
    miss. *)

val add : 'a t -> ?admit:bool -> string -> 'a -> unit
(** Insert (or refresh) a binding, dropping the LRU entry if the cache
    is full — counted as an expiration when that entry's TTL had already
    passed, as a capacity eviction otherwise. With [~admit:false] the
    value is dropped instead and counted as an admission rejection — the
    hook for cost-aware admission control. *)

val mem : 'a t -> string -> bool
(** [true] iff the key is present and unexpired. Does not touch recency,
    and counts neither hit nor miss; a present-but-expired entry is
    removed and counted as one expiration, exactly as {!find} would, so
    counter totals do not depend on which probe noticed the expiry. *)

val length : 'a t -> int
val capacity : 'a t -> int

val keys_mru_first : 'a t -> string list
(** Current keys, most recently used first (the eviction order reversed) —
    for tests and diagnostics. *)

val counters : 'a t -> counters

val hit_rate : 'a t -> float
(** hits / (hits + misses); 0 before any lookup. *)

(** {2 Cost-aware admission via the g(α) theory}

    A served query class maps onto the paper's two-stage composite: M₁ is
    the expensive computation of a fresh result (cost c₁), M₂ is serving
    one response (cost c₂). V₁ is the variance of results across the
    class; V₂ — the covariance between answers that share one cached
    computation — shrinks as the class's exact-repeat fraction grows,
    because an exact repeat reuses its result with no statistical
    penalty. Caching the class pays off exactly when the achievable
    {!Mde_composite.Result_cache.efficiency_gain} exceeds 1. *)

val class_statistics :
  compute_cost:float ->
  serve_cost:float ->
  result_variance:float ->
  repeat_fraction:float ->
  Mde_composite.Result_cache.statistics
(** Build g(α) statistics for a query class from serving-layer
    observations: [compute_cost] = mean seconds to compute one fresh
    result (c₁), [serve_cost] = mean seconds to serve one response (c₂),
    [result_variance] = sample variance of results in the class (V₁),
    [repeat_fraction] ∈ [0,1] = fraction of requests that exactly repeat
    an earlier fingerprint (V₂ = V₁·(1 − repeat_fraction)). Inputs are
    clamped to safe ranges. *)

val pays_off : ?min_gain:float -> Mde_composite.Result_cache.statistics -> bool
(** [pays_off stats] — should results of this class be admitted?
    [true] iff [Result_cache.efficiency_gain stats >= min_gain]
    (default just above 1: any strict gain admits). *)
