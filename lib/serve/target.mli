(** A first-class handle on "something that serves requests" — one
    {!Server} or a sharded {!Shard} front behind a single
    submit/drain/stats interface.

    The open-loop workload driver, the shard benchmark and the
    progressive {!Session} engine all used to either take a concrete
    server or re-wrap the two backends in ad-hoc closure records
    ([Workload.target]); they now all drive a [Target.t], so anything
    that can accept-or-drop a request and later deliver responses plugs
    into every driver. [`Dropped] unifies {!Server}'s backpressure
    [`Rejected] and {!Shard}'s typed [`Shed]: callers that need the
    shed's type still hold the underlying front.

    A target also exposes the progressive-refinement hooks
    ({!refine}/{!refinement_key}) so a {!Session} is backend-agnostic —
    and can even be re-pointed at a resized front mid-flight
    ({!Session.retarget}), because streams depend only on request
    seeds, never on which backend or shard executes them. *)

type stats = {
  served : int;  (** responses delivered (cache hits included) *)
  dropped : int;  (** backpressure rejections plus typed sheds *)
  degraded : int;  (** deadline-degraded responses *)
}

type t

val of_server : Server.t -> t
val of_shard : Shard.t -> t
(** Constructors. A target borrows its backend (no lifecycle of its
    own): shutting the server or front down invalidates the target the
    same way it invalidates direct use. *)

val submit : t -> Server.request -> [ `Queued of int | `Dropped ]
(** Validate and enqueue; [`Queued id] is delivered by {!drain}. Raises
    [Invalid_argument] on malformed requests, as the backends do. *)

val drain : t -> (int * Server.response) list
(** Execute queued work and deliver every completed response, in
    submission order of this target's backend. *)

val serve : t -> Server.request -> [ `Served of Server.response | `Dropped ]
(** [submit] + [drain] for a single request. *)

val stats : t -> stats
(** Backend counters folded to the common denominator (a shard front
    sums its shards; shed counts of both levels land in [dropped]). *)

val refine : t -> Server.request -> lo:int -> hi:int -> float array
(** {!Server.sample_batch} / {!Shard.sample_batch} of the backend. *)

val refinement_key : t -> Server.request -> string
(** {!Server.refinement_key} / {!Shard.refinement_key} of the backend. *)
