module Clock = struct
  type t = unit -> float

  (* Process-wide high-water mark: gettimeofday can step backwards under
     NTP adjustment, and a deadline computed across such a step would be
     negative. The CAS loop keeps the clock monotonic without a lock. *)
  let high_water = Atomic.make neg_infinity

  let wall () =
    let t = Unix.gettimeofday () in
    let rec advance () =
      let last = Atomic.get high_water in
      if t > last then if Atomic.compare_and_set high_water last t then t else advance ()
      else last
    in
    advance ()
end

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 5e-4; 1e-3; 5e-3; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10. |]

module Counter = struct
  type t = Noop | Live of int Atomic.t

  let incr = function Noop -> () | Live a -> Atomic.incr a

  let add t n =
    match t with
    | Noop -> ()
    | Live a ->
      if n < 0 then invalid_arg "Obs.Counter.add: counters are monotonic";
      ignore (Atomic.fetch_and_add a n)

  let value = function Noop -> 0 | Live a -> Atomic.get a
end

module Gauge = struct
  type t = Noop | Live of float Atomic.t

  let set t v = match t with Noop -> () | Live a -> Atomic.set a v

  let add t v =
    match t with
    | Noop -> ()
    | Live a ->
      let rec go () =
        let cur = Atomic.get a in
        if not (Atomic.compare_and_set a cur (cur +. v)) then go ()
      in
      go ()

  let value = function Noop -> 0. | Live a -> Atomic.get a
end

module Histogram = struct
  type live = {
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int array;  (* length bounds + 1; last slot is the +inf overflow *)
    mutable h_sum : float;
    mutable h_count : int;
    mutable h_min : float;
    mutable h_max : float;
    lock : Mutex.t;
  }

  type t = Noop | Live of live

  let make bounds =
    {
      bounds;
      counts = Array.make (Array.length bounds + 1) 0;
      h_sum = 0.;
      h_count = 0;
      h_min = infinity;
      h_max = neg_infinity;
      lock = Mutex.create ();
    }

  let observe t v =
    match t with
    | Noop -> ()
    | Live h ->
      Mutex.lock h.lock;
      let n = Array.length h.bounds in
      let i = ref 0 in
      while !i < n && v > h.bounds.(!i) do
        incr i
      done;
      h.counts.(!i) <- h.counts.(!i) + 1;
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      Mutex.unlock h.lock

  let count = function Noop -> 0 | Live h -> h.h_count
  let sum = function Noop -> 0. | Live h -> h.h_sum

  let quantile t p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg "Obs.Histogram.quantile: p must be in [0,1]";
    match t with
    | Noop -> Float.nan
    | Live h ->
      Mutex.lock h.lock;
      let result =
        if h.h_count = 0 then Float.nan
        else begin
          (* Nearest rank: the ⌈p·count⌉-th observation (1-based). *)
          let rank = Stdlib.max 1 (int_of_float (ceil (p *. float_of_int h.h_count))) in
          let n = Array.length h.bounds in
          let rec go i acc =
            let acc = acc + h.counts.(i) in
            if acc >= rank then
              if i = n then h.h_max else Float.min h.bounds.(i) h.h_max
            else go (i + 1) acc
          in
          go 0 0
        end
      in
      Mutex.unlock h.lock;
      result
end

(* --- registry --- *)

type labels = (string * string) list

type metric =
  | Mcounter of int Atomic.t
  | Mgauge of float Atomic.t
  | Mhist of Histogram.live

type registered = { r_name : string; r_help : string; r_labels : labels; r_metric : metric }
type span = { name : string; depth : int; start : float; stop : float }

type span_cell = {
  s_name : string;
  s_depth : int;
  s_start : float;
  mutable s_stop : float;
}

type live_registry = {
  lock : Mutex.t;
  tbl : (string * labels, registered) Hashtbl.t;
  mutable rev_order : registered list;  (* registration order, newest first *)
  mutable span_buf : span_cell array;
  mutable span_len : int;
  mutable span_depth : int;
  mutable dropped : int;
}

type t = Noop | Live of live_registry

let span_capacity = 8192

let create () =
  Live
    {
      lock = Mutex.create ();
      tbl = Hashtbl.create 64;
      rev_order = [];
      span_buf = [||];
      span_len = 0;
      span_depth = 0;
      dropped = 0;
    }

let noop = Noop
let enabled = function Noop -> false | Live _ -> true

(* The process-wide default, read by instrumented constructors. *)
let global = Atomic.make Noop
let set_default t = Atomic.set global t
let default () = Atomic.get global

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let valid_label_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let kind_of = function
  | Mcounter _ -> "counter"
  | Mgauge _ -> "gauge"
  | Mhist _ -> "histogram"

(* Get-or-register under the registry lock; idempotent per (name,
   labels). [make] builds the cell only on first registration. *)
let register r ~name ~help ~labels make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs: invalid metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Obs: invalid label name %S on %s" k name))
    labels;
  Mutex.lock r.lock;
  let reg =
    match Hashtbl.find_opt r.tbl (name, labels) with
    | Some existing -> existing
    | None ->
      let reg = { r_name = name; r_help = help; r_labels = labels; r_metric = make () } in
      Hashtbl.replace r.tbl (name, labels) reg;
      r.rev_order <- reg :: r.rev_order;
      reg
  in
  Mutex.unlock r.lock;
  reg

let type_clash name want got =
  invalid_arg
    (Printf.sprintf "Obs: %s already registered as a %s, requested as a %s" name
       (kind_of got) want)

let counter t ?(help = "") ?(labels = []) name =
  match t with
  | Noop -> Counter.Noop
  | Live r -> (
    let reg = register r ~name ~help ~labels (fun () -> Mcounter (Atomic.make 0)) in
    match reg.r_metric with
    | Mcounter a -> Counter.Live a
    | other -> type_clash name "counter" other)

let gauge t ?(help = "") ?(labels = []) name =
  match t with
  | Noop -> Gauge.Noop
  | Live r -> (
    let reg = register r ~name ~help ~labels (fun () -> Mgauge (Atomic.make 0.)) in
    match reg.r_metric with
    | Mgauge a -> Gauge.Live a
    | other -> type_clash name "gauge" other)

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  match t with
  | Noop -> Histogram.Noop
  | Live r ->
    Array.iteri
      (fun i b ->
        if i > 0 && not (b > buckets.(i - 1)) then
          invalid_arg
            (Printf.sprintf "Obs: histogram %s buckets must be strictly increasing" name))
      buckets;
    (let reg =
       register r ~name ~help ~labels (fun () -> Mhist (Histogram.make (Array.copy buckets)))
     in
     match reg.r_metric with
     | Mhist h -> Histogram.Live h
     | other -> type_clash name "histogram" other)

(* --- spans --- *)

let dummy_cell = { s_name = ""; s_depth = 0; s_start = 0.; s_stop = 0. }

let with_span t ?(clock = Clock.wall) ~name f =
  match t with
  | Noop -> f ()
  | Live r ->
    Mutex.lock r.lock;
    let cell =
      if r.span_len >= span_capacity then begin
        r.dropped <- r.dropped + 1;
        None
      end
      else begin
        if r.span_len >= Array.length r.span_buf then begin
          let grown =
            Array.make (Stdlib.max 64 (2 * Array.length r.span_buf)) dummy_cell
          in
          Array.blit r.span_buf 0 grown 0 r.span_len;
          r.span_buf <- grown
        end;
        let c =
          { s_name = name; s_depth = r.span_depth; s_start = clock (); s_stop = Float.nan }
        in
        r.span_buf.(r.span_len) <- c;
        r.span_len <- r.span_len + 1;
        Some c
      end
    in
    r.span_depth <- r.span_depth + 1;
    Mutex.unlock r.lock;
    let finish () =
      Mutex.lock r.lock;
      r.span_depth <- r.span_depth - 1;
      (match cell with Some c -> c.s_stop <- clock () | None -> ());
      Mutex.unlock r.lock
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish ();
      Printexc.raise_with_backtrace e bt)

let spans t =
  match t with
  | Noop -> []
  | Live r ->
    Mutex.lock r.lock;
    let out =
      List.init r.span_len (fun i ->
          let c = r.span_buf.(i) in
          { name = c.s_name; depth = c.s_depth; start = c.s_start; stop = c.s_stop })
    in
    Mutex.unlock r.lock;
    out

let spans_dropped = function Noop -> 0 | Live r -> r.dropped

(* --- export --- *)

module Export = struct
  let float_str v =
    if Float.is_nan v then "NaN"
    else if v = infinity then "+Inf"
    else if v = neg_infinity then "-Inf"
    else Printf.sprintf "%.17g" v

  let escape_label_value s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let render_labels = function
    | [] -> ""
    | labels ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
              labels))

  let ordered r =
    Mutex.lock r.lock;
    let regs = List.rev r.rev_order in
    Mutex.unlock r.lock;
    regs

  let prometheus t =
    match t with
    | Noop -> ""
    | Live r ->
      let buf = Buffer.create 1024 in
      let headers_done = Hashtbl.create 16 in
      List.iter
        (fun reg ->
          if not (Hashtbl.mem headers_done reg.r_name) then begin
            Hashtbl.add headers_done reg.r_name ();
            if reg.r_help <> "" then
              Buffer.add_string buf
                (Printf.sprintf "# HELP %s %s\n" reg.r_name reg.r_help);
            Buffer.add_string buf
              (Printf.sprintf "# TYPE %s %s\n" reg.r_name (kind_of reg.r_metric))
          end;
          let lbl = render_labels reg.r_labels in
          match reg.r_metric with
          | Mcounter a ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" reg.r_name lbl (Atomic.get a))
          | Mgauge a ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" reg.r_name lbl (float_str (Atomic.get a)))
          | Mhist h ->
            Mutex.lock h.Histogram.lock;
            let cumulative = ref 0 in
            Array.iteri
              (fun i c ->
                cumulative := !cumulative + c;
                if i < Array.length h.Histogram.bounds then
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" reg.r_name
                       (render_labels
                          (reg.r_labels
                          @ [ ("le", float_str h.Histogram.bounds.(i)) ]))
                       !cumulative))
              h.Histogram.counts;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" reg.r_name
                 (render_labels (reg.r_labels @ [ ("le", "+Inf") ]))
                 h.Histogram.h_count);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" reg.r_name lbl
                 (float_str h.Histogram.h_sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" reg.r_name lbl h.Histogram.h_count);
            Mutex.unlock h.Histogram.lock)
        (ordered r);
      Buffer.contents buf

  (* JSON: non-finite floats are not representable, so they render as
     null — same convention as the benchmark emitter. *)
  let json_float v = if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

  let json_labels labels =
    Printf.sprintf "{%s}"
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%S: %S" k v) labels))

  let json t =
    match t with
    | Noop -> "{\"metrics\": [], \"spans\": [], \"spans_dropped\": 0}"
    | Live r ->
      let metric_json reg =
        let common =
          Printf.sprintf "\"name\": %S, \"labels\": %s" reg.r_name
            (json_labels reg.r_labels)
        in
        match reg.r_metric with
        | Mcounter a ->
          Printf.sprintf "{\"type\": \"counter\", %s, \"value\": %d}" common
            (Atomic.get a)
        | Mgauge a ->
          Printf.sprintf "{\"type\": \"gauge\", %s, \"value\": %s}" common
            (json_float (Atomic.get a))
        | Mhist h ->
          Mutex.lock h.Histogram.lock;
          let cumulative = ref 0 in
          let buckets =
            String.concat ", "
              (List.init
                 (Array.length h.Histogram.bounds)
                 (fun i ->
                   cumulative := !cumulative + h.Histogram.counts.(i);
                   Printf.sprintf "{\"le\": %s, \"count\": %d}"
                     (json_float h.Histogram.bounds.(i))
                     !cumulative))
          in
          let count = h.Histogram.h_count and sum = h.Histogram.h_sum in
          Mutex.unlock h.Histogram.lock;
          let q p = json_float (Histogram.quantile (Histogram.Live h) p) in
          Printf.sprintf
            "{\"type\": \"histogram\", %s, \"count\": %d, \"sum\": %s, \"p50\": %s, \
             \"p90\": %s, \"p95\": %s, \"p99\": %s, \"buckets\": [%s]}"
            common count (json_float sum) (q 0.5) (q 0.9) (q 0.95) (q 0.99) buckets
      in
      let metrics = String.concat ", " (List.map metric_json (ordered r)) in
      let span_json (s : span) =
        Printf.sprintf "{\"name\": %S, \"depth\": %d, \"start\": %s, \"stop\": %s}"
          s.name s.depth (json_float s.start) (json_float s.stop)
      in
      let spans_s = String.concat ", " (List.map span_json (spans t)) in
      Printf.sprintf "{\"metrics\": [%s], \"spans\": [%s], \"spans_dropped\": %d}"
        metrics spans_s (spans_dropped t)

  (* --- exposition-format validation (the CI gate) --- *)

  let split_lines s = String.split_on_char '\n' s

  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix

  let validate_sample_line line =
    (* name[{labels}] value *)
    let name_end =
      let rec go i =
        if i >= String.length line then i
        else
          match line.[i] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> go (i + 1)
          | _ -> i
      in
      go 0
    in
    if name_end = 0 || not (valid_name (String.sub line 0 name_end)) then
      Error "invalid metric name"
    else
      let rest = String.sub line name_end (String.length line - name_end) in
      let after_labels =
        if rest <> "" && rest.[0] = '{' then begin
          (* Scan the label block: k="v" pairs, quotes balanced, comma
             separated; label values may contain escaped quotes. *)
          let n = String.length rest in
          let rec scan i in_quotes =
            if i >= n then Error "unterminated label block"
            else if in_quotes then
              match rest.[i] with
              | '\\' -> if i + 1 < n then scan (i + 2) true else Error "dangling escape"
              | '"' -> scan (i + 1) false
              | _ -> scan (i + 1) true
            else
              match rest.[i] with
              | '"' -> scan (i + 1) true
              | '}' -> Ok (String.sub rest (i + 1) (n - i - 1))
              | _ -> scan (i + 1) false
          in
          scan 1 false
        end
        else Ok rest
      in
      match after_labels with
      | Error _ as e -> e
      | Ok rest ->
        if not (starts_with " " rest) then Error "expected space before value"
        else
          let value = String.trim rest in
          if value = "" then Error "missing value"
          else (
            match float_of_string_opt (String.lowercase_ascii value) with
            | Some _ -> Ok ()
            | None -> Error (Printf.sprintf "unparseable value %S" value))

  let validate_prometheus s =
    let rec go lineno = function
      | [] -> Ok ()
      | "" :: rest -> go (lineno + 1) rest
      | line :: rest ->
        let verdict =
          if line.[0] = '#' then
            if starts_with "# HELP " line || starts_with "# TYPE " line then Ok ()
            else Error "comment is neither # HELP nor # TYPE"
          else validate_sample_line line
        in
        (match verdict with
        | Ok () -> go (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s: %s" lineno msg line))
    in
    go 1 (split_lines s)
end
