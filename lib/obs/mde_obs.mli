(** Observability: the self-measurement substrate the serving stack needs
    before it can be steered.

    Haas's §2 systems assume the ecosystem can observe itself — Indemics
    queries a simulation {e while it runs}, and simulation-run
    optimization picks replication splits from {e measured} cost
    statistics. This library supplies the three primitives those loops
    need, with one design rule throughout: {b observability never changes
    an answer}. Metrics and spans read clocks and bump counters; they
    never touch an RNG stream or a result value, so an instrumented run
    is bit-identical to an uninstrumented one.

    {2 The registry}

    A {!type-t} holds named metrics — monotonic {!Counter}s, set-anywhere
    {!Gauge}s, and fixed-bucket {!Histogram}s with an exact-rank quantile
    readout — plus a buffer of completed {!type-span}s. Metric
    registration is idempotent: asking twice for the same (name, labels)
    pair returns the same cell, so independent subsystems (pool,
    scheduler, cache, estimators) can all write into one registry and one
    exporter sees everything.

    {2 The no-op registry}

    {!noop} is a registry whose metrics are shared stubs: every operation
    on them is a branch and a return — no allocation, no clock read, no
    lock. The process-wide {!default} registry starts as {!noop}, and the
    instrumented hot paths read it at construction time, so programs that
    never call {!set_default} pay nothing. Counters and gauges are
    lock-free ([Atomic]); histograms and the span buffer take a mutex and
    are safe to write from pool worker domains. *)

module Clock : sig
  type t = unit -> float
  (** A clock is any function returning seconds; the serving layer takes
      clocks as values so tests can inject deterministic ones. *)

  val wall : t
  (** Monotonic wall clock: [Unix.gettimeofday] guarded by a process-wide
      high-water mark, so a backward step of the system clock can never
      make an interval negative. This is the default clock everywhere —
      {e not} [Sys.time], which counts process CPU seconds and stands
      still while a request sleeps in a queue or a worker domain runs on
      another core. *)
end

type t
(** A metrics registry (or the {!noop} stub). *)

val create : unit -> t
(** A fresh live registry. *)

val noop : t
(** The shared no-op registry: every metric it hands out ignores writes
    and reads back zero; {!with_span} just runs its thunk. *)

val enabled : t -> bool
(** [false] exactly for {!noop} — the guard instrumented code uses to
    skip clock reads when observability is off. *)

val set_default : t -> unit

val default : unit -> t
(** The process-wide registry, initially {!noop}. Instrumented
    constructors ({!Mde_par.Pool.create}, [Serve.*.create],
    [Database.estimate]) read it when no explicit registry is passed, so
    call {!set_default} {e before} building the objects you want
    measured. *)

(** {1 Metrics} *)

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit
  (** Raises [Invalid_argument] on a negative increment — counters are
      monotonic. *)

  val value : t -> int
  (** 0 on a no-op counter. *)
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val quantile : t -> float -> float
  (** Exact nearest-rank selection over the recorded buckets: the
      ⌈p·count⌉-th observation's bucket upper bound, clamped to the
      largest value actually observed (the overflow bucket reads back
      exactly that maximum). Deterministic for a given observation
      sequence; [nan] while the histogram is empty. Raises
      [Invalid_argument] unless 0 ≤ p ≤ 1. *)
end

val default_buckets : float array
(** Latency-shaped upper bounds, 1µs … 10s. An implicit +∞ overflow
    bucket always follows the last bound. *)

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  Histogram.t
(** Register (or fetch — registration is idempotent per (name, labels))
    a metric. Names must match [[a-zA-Z_:][a-zA-Z0-9_:]*] and label names
    [[a-zA-Z_][a-zA-Z0-9_]*], so the exporter is well-formed by
    construction; [buckets] must be strictly increasing. Raises
    [Invalid_argument] on a malformed name or on re-registering a name
    as a different metric type. *)

(** {1 Spans} *)

type span = { name : string; depth : int; start : float; stop : float }
(** One completed (or still-open, [stop = nan]) timed region. [depth] is
    the nesting level at entry. *)

val with_span : t -> ?clock:Clock.t -> name:string -> (unit -> 'a) -> 'a
(** [with_span t ~name f] records the start/stop of [f] on [clock]
    (default {!Clock.wall}) and returns [f ()], re-raising any exception
    after closing the span. Spans nest; the buffer keeps the first
    {!span_capacity} spans in {e flame order} (preorder: parents before
    their children) and counts the rest as dropped. On {!noop} this is
    exactly [f ()]. *)

val spans : t -> span list
(** The recorded spans, flame-ordered. *)

val spans_dropped : t -> int

val span_capacity : int

(** {1 Export} *)

module Export : sig
  val prometheus : t -> string
  (** Prometheus text exposition: [# HELP]/[# TYPE] comments, one line
      per sample, histograms as cumulative [_bucket{le=...}] series plus
      [_sum]/[_count]. Spans are not exported here (they are not
      metrics); use {!json}. *)

  val json : t -> string
  (** One JSON object: every metric (histograms with bucket counts and
      p50/p90/p95/p99 readouts), the span list, and the dropped-span
      count. Non-finite floats render as [null], matching the benchmark
      emitter. *)

  val validate_prometheus : string -> (unit, string) result
  (** Check every line of a text exposition: comments must be [# HELP] or
      [# TYPE], sample lines must be [name{labels} value] with a valid
      metric name, balanced quoted labels and a parseable value.
      [Error msg] pinpoints the first offending line — the CI gate for
      "the exporter never emits a malformed line". *)
end
