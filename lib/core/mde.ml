(** Model-data ecosystems: the single entry point.

    This library reproduces the systems surveyed in "Model-Data
    Ecosystems: Challenges, Tools, and Trends" (Haas, PODS 2014). The
    aliases below group the sub-libraries by paper section; see DESIGN.md
    for the inventory and EXPERIMENTS.md for the figure reproductions.

    {1 Substrates}
    - {!Obs} observability: metrics registry, spans, exporters
    - {!Par} the domain-pool parallel runtime (deterministic fan-out)
    - {!Prob} randomness, distributions, statistics, KDE
    - {!Linalg} dense/tridiagonal linear algebra, OLS
    - {!Mapred} the in-memory MapReduce engine with shuffle accounting
    - {!Relational} the from-scratch relational engine

    {1 Data-intensive simulation (§2)}
    - {!Des} the discrete-event simulation core (event queue, engine,
      M/M/c validation model)
    - {!Mcdb} Monte Carlo databases: VG functions, tuple bundles, risk
    - {!Simsql} database-valued Markov chains, ABS-as-self-join
    - {!Timeseries} time alignment, cubic splines, DSGD, schema maps
    - {!Gridfields} the gridfield algebra with regrid optimization
    - {!Composite} Splash-style composition + result caching (§2.3)
    - {!Serve} the query-serving layer: cached, batched, deadline-aware
      request service over Mcdb/Simsql/Composite (§2.3 at serving scale)
    - {!Epidemic} the Indemics HPC+RDBMS epidemic engine (§2.4)
    - {!Abs} agent framework, traffic, Schelling, PDES range queries

    {1 Information integration (§3)}
    - {!Calibrate} MLE, method of (simulated) moments, market ABS
    - {!Assimilate} particle filters and wildfire data assimilation

    {1 Simulation metamodeling (§4)}
    - {!Metamodel} designs, polynomial + GP metamodels, screening
    - {!Optimize} the shared derivative-free optimizers *)

module Obs = Mde_obs
module Par = Mde_par
module Prob = Mde_prob
module Linalg = Mde_linalg
module Mapred = Mde_mapred
module Des = Mde_des
module Relational = Mde_relational
module Mcdb = Mde_mcdb
module Simsql = Mde_simsql
module Timeseries = Mde_timeseries
module Gridfields = Mde_gridfields
module Composite = Mde_composite
module Serve = Mde_serve
module Abs = Mde_abs
module Epidemic = Mde_epidemic
module Assimilate = Mde_assimilate
module Optimize = Mde_optimize
module Metamodel = Mde_metamodel
module Calibrate = Mde_calibrate
module Registry = Registry
