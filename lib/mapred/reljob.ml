(* Relational tables on the MapReduce engine: the same group/shuffle and
   sample-sort machinery every other job uses, keyed by Value.Key so NaN
   and cross-type numeric keys behave exactly as they do in the columnar
   and row engines, and folding group members through Algebra's shared
   accumulators so per-group values come out bit-identical to the row
   oracle. *)
open Mde_relational

let dataset ?(partitions = 4) table =
  Dataset.of_array ~partitions (Table.rows table)

let group_by ?pool ?partitions ~keys ~aggs table =
  let schema = Table.schema table in
  let key_idx = List.map (Schema.column_index schema) keys in
  let out_schema =
    Schema.of_list
      (List.map (fun k -> (k, Schema.column_type schema k)) keys
      @ List.map (fun (n, a) -> (n, Algebra.agg_type a)) aggs)
  in
  let out, stats =
    Job.map_reduce ?pool ~hash:Value.Key.hash ~equal:Value.Key.equal
      ~map:(fun row -> [ (List.map (fun i -> row.(i)) key_idx, (row : Table.row)) ])
      ~reduce:(fun key rows ->
        (* The shuffle routes partitions in index order and each bucket
           preserves arrival order, so [rows] is in original row order —
           float accumulation order matches the sequential oracle. *)
        let accs = List.map (fun (_, a) -> (a, Algebra.fresh_acc ())) aggs in
        List.iter
          (fun row -> List.iter (fun (a, acc) -> Algebra.feed_acc a schema row acc) accs)
          rows;
        [ Array.of_list (key @ List.map (fun (a, acc) -> Algebra.finish_acc a acc) accs) ])
      (dataset ?partitions table)
  in
  let rows = Dataset.to_array out in
  let rows =
    (* A global aggregate over empty input still emits one row, per the
       Algebra.group_by contract. *)
    if Array.length rows = 0 && keys = [] then
      [| Array.of_list (List.map (fun (_, a) -> Algebra.finish_acc a (Algebra.fresh_acc ())) aggs) |]
    else rows
  in
  (Table.of_rows out_schema rows, stats)

let sort_by ?pool ?partitions ?(descending = false) names table =
  let schema = Table.schema table in
  let idxs = List.map (Schema.column_index schema) names in
  let cmp (a : Table.row) (b : Table.row) =
    let rec go = function
      | [] -> 0
      | i :: rest ->
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go rest
    in
    let c = go idxs in
    if descending then -c else c
  in
  let out, stats = Job.sort_by ?pool ~cmp (dataset ?partitions table) in
  (Table.of_rows schema (Dataset.to_array out), stats)
