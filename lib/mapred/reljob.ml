(* Relational tables on the MapReduce engine: the same group/shuffle and
   sample-sort machinery every other job uses, keyed by Value.Key so NaN
   and cross-type numeric keys behave exactly as they do in the columnar
   and row engines, and folding group members through Algebra's shared
   accumulators so per-group values come out bit-identical to the row
   oracle. *)
open Mde_relational

let dataset ?(partitions = 4) table =
  Dataset.of_array ~partitions (Table.rows table)

let group_by ?pool ?partitions ~keys ~aggs table =
  let schema = Table.schema table in
  let key_idx = List.map (Schema.column_index schema) keys in
  let out_schema =
    Schema.of_list
      (List.map (fun k -> (k, Schema.column_type schema k)) keys
      @ List.map (fun (n, a) -> (n, Algebra.agg_type a)) aggs)
  in
  (* The reduce fold, shared by both keying strategies. The shuffle
     routes partitions in index order and each bucket preserves arrival
     order, so [rows] is in original row order — float accumulation
     order matches the sequential oracle. *)
  let fold_group key rows =
    let accs = List.map (fun (_, a) -> (a, Algebra.fresh_acc ())) aggs in
    List.iter
      (fun row -> List.iter (fun (a, acc) -> Algebra.feed_acc a schema row acc) accs)
      rows;
    [ Array.of_list (key @ List.map (fun (a, acc) -> Algebra.finish_acc a acc) accs) ]
  in
  let rows = Table.rows table in
  (* Packed key codes: when the key columns encode, each row's composite
     key shuffles as one immediate int (mixed by [Keycode.int_hash])
     instead of a boxed Value list hashed component-wise per row. The
     reduce recovers the boxed key values from its first member row —
     all members agree under Value.Key equality, which the code is
     injective for. Group order across partitions may differ from the
     boxed routing; the Reljob contract compares groups as multisets. *)
  let codes =
    match keys with
    | [] -> None
    | _ -> (
      let key_cols =
        Array.of_list
          (List.map2
             (fun k j ->
               Column.of_det_cells ?pool
                 ~ty:(Schema.column_type schema k)
                 ~rows:(Array.length rows) ~reps:1
                 (fun i -> rows.(i).(j)))
             keys key_idx)
      in
      match Keycode.of_columns [ key_cols ] with
      | None -> None
      | Some enc -> (
        match (Keycode.encode ?pool enc ~side:0).keys with
        | Keycode.Kint arr -> Some arr
        | Keycode.Kbytes _ -> None))
  in
  let out, stats =
    match codes with
    | Some codes ->
      Job.map_reduce ?pool ~hash:Keycode.int_hash ~equal:Int.equal
        ~map:(fun (i, row) -> [ (codes.(i), (row : Table.row)) ])
        ~reduce:(fun _code group_rows ->
          let row0 = List.hd group_rows in
          fold_group (List.map (fun j -> row0.(j)) key_idx) group_rows)
        (Dataset.of_array
           ~partitions:(Option.value ~default:4 partitions)
           (Array.mapi (fun i r -> (i, r)) rows))
    | None ->
      Job.map_reduce ?pool ~hash:Value.Key.hash ~equal:Value.Key.equal
        ~map:(fun row -> [ (List.map (fun i -> row.(i)) key_idx, (row : Table.row)) ])
        ~reduce:fold_group (dataset ?partitions table)
  in
  let rows = Dataset.to_array out in
  let rows =
    (* A global aggregate over empty input still emits one row, per the
       Algebra.group_by contract. *)
    if Array.length rows = 0 && keys = [] then
      [| Array.of_list (List.map (fun (_, a) -> Algebra.finish_acc a (Algebra.fresh_acc ())) aggs) |]
    else rows
  in
  (Table.of_rows out_schema rows, stats)

let sort_by ?pool ?partitions ?(descending = false) names table =
  let schema = Table.schema table in
  let idxs = List.map (Schema.column_index schema) names in
  let cmp (a : Table.row) (b : Table.row) =
    let rec go = function
      | [] -> 0
      | i :: rest ->
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go rest
    in
    let c = go idxs in
    if descending then -c else c
  in
  let out, stats = Job.sort_by ?pool ~cmp (dataset ?partitions table) in
  (Table.of_rows schema (Dataset.to_array out), stats)
