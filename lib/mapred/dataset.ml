type 'a t = 'a array array

let of_array ?(partitions = 4) data =
  (* Not an assert: validation must survive [-noassert] builds. *)
  if partitions <= 0 then invalid_arg "Dataset.of_array: partitions must be positive";
  let n = Array.length data in
  if n = 0 then [| [||] |]
  else begin
    let parts = min partitions n in
    let base = n / parts and extra = n mod parts in
    let out = Array.make parts [||] in
    let start = ref 0 in
    for p = 0 to parts - 1 do
      let len = base + if p < extra then 1 else 0 in
      out.(p) <- Array.sub data !start len;
      start := !start + len
    done;
    out
  end

let of_partitions parts =
  if Array.length parts = 0 then
    invalid_arg "Dataset.of_partitions: at least one partition required";
  Array.map Array.copy parts

let to_array t = Array.concat (Array.to_list t)
let partitions t = t
let partition_count = Array.length
let total_length t = Array.fold_left (fun acc p -> acc + Array.length p) 0 t
let map f t = Array.map (Array.map f) t

let mapi f t =
  let counter = ref 0 in
  Array.map
    (Array.map (fun x ->
         let i = !counter in
         incr counter;
         f i x))
    t

let map_partitions f t = Array.map f t

let filter pred t = Array.map (fun p -> Array.of_list (List.filter pred (Array.to_list p))) t

let fold f init t = Array.fold_left (Array.fold_left f) init t
let iter f t = Array.iter (Array.iter f) t
