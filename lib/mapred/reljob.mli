(** Relational operators on the MapReduce engine — SimSQL's execution
    story (§2.1: "SimSQL compiles queries over stochastic tables into
    Hadoop jobs") made concrete over {!Job}.

    Tables enter as row datasets ([Columnar.of_table]/[to_table] bridge
    the columnar engine) and run through the same shuffle/group/sort
    machinery as every other job, with two guarantees the generic
    defaults cannot give:

    - keys use [Value.Key.hash]/[Value.Key.equal], so NaN group keys
      form one group and Int/Float keys match numerically, exactly as
      the columnar and row engines behave;
    - group members are folded through {!Algebra}'s shared accumulators
      in original row order, so per-group aggregate values are
      bit-identical to {!Algebra.group_by}, pooled or not. *)

open Mde_relational

val dataset : ?partitions:int -> Table.t -> Table.row Dataset.t
(** Rows of the table, range-partitioned (default 4). *)

val group_by :
  ?pool:Mde_par.Pool.t ->
  ?partitions:int ->
  keys:string list ->
  aggs:(string * Algebra.aggregate) list ->
  Table.t ->
  Table.t * Job.stats
(** Distributed {!Algebra.group_by}. Per-group values are bit-identical
    to the row oracle; group {e row order} is the job's deterministic
    (reduce-bucket, then first-seen) order rather than global first-seen
    — compare as multisets. [keys = []] yields the single global row
    even on empty input. *)

val sort_by :
  ?pool:Mde_par.Pool.t ->
  ?partitions:int ->
  ?descending:bool ->
  string list ->
  Table.t ->
  Table.t * Job.stats
(** Distributed stable sort on the named columns under [Value.compare];
    output rows equal {!Algebra.order_by}'s exactly (the sample sort is
    stable and ranges are contiguous), pooled or not. *)
