(** MapReduce jobs over {!Dataset} values, with explicit accounting of
    shuffle traffic.

    The paper's §2.2 argument — that DSGD beats direct linear solvers on
    MapReduce because "the amount of data that needs to be shuffled is
    negligible" — is made measurable here: every job reports how many
    records crossed partition boundaries. *)

type stats = {
  records_mapped : int;  (** inputs consumed by the map phase *)
  records_shuffled : int;
      (** key/value pairs that moved to a different partition than the one
          that produced them *)
  records_reduced : int;  (** key groups consumed by the reduce phase *)
  partitions : int;
}

val pp_stats : Format.formatter -> stats -> unit

val group_pairs :
  ?hash:('k -> int) ->
  ?equal:('k -> 'k -> bool) ->
  ('k * 'v) list ->
  ('k * 'v list) list
(** Group pairs by key, preserving first-seen key order and per-key
    emission order — the grouping used by the combiner and reduce
    phases. Defaults ([Hashtbl.hash]/structural [=]) reproduce a
    polymorphic hash table; relational callers pass
    [Value.Key.hash]/[Value.Key.equal] so NaN and cross-type numeric
    keys form one group (see {!Reljob}). *)

val map_reduce :
  ?pool:Mde_par.Pool.t ->
  ?reduce_partitions:int ->
  ?hash:('k -> int) ->
  ?equal:('k -> 'k -> bool) ->
  ?combine:('k -> 'v list -> 'v list) ->
  map:('a -> ('k * 'v) list) ->
  reduce:('k -> 'v list -> 'c list) ->
  'a Dataset.t ->
  'c Dataset.t * stats
(** Classic job: map every record to key/value pairs, optionally combine
    per input partition (reducing shuffle volume, as a Hadoop combiner
    does), hash-partition by key into [reduce_partitions] (default: same
    as input; must be positive or [Invalid_argument] is raised), group
    values per key preserving emission order, reduce. Within each reduce
    partition, key groups are processed in a deterministic (hash-bucket,
    then first-seen) order. [?hash]/[?equal] override the key equivalence
    used by the shuffle and the grouping, as in {!group_pairs}.

    A record is charged to the shuffle only when it lands in a reduce
    partition different from the input partition that emitted it —
    cross-partition traffic — whatever the reduce-side partition count.

    With [?pool], the map phase runs each input partition on its own
    domain and the reduce phase each output partition likewise ([map],
    [combine] and [reduce] must then be pure, or at least free of shared
    mutable state); the shuffle stays sequential, so output and stats
    are bit-identical to the sequential run. *)

val equi_join :
  ?pool:Mde_par.Pool.t ->
  ?partitions:int ->
  ?hash:('k -> int) ->
  ?equal:('k -> 'k -> bool) ->
  left_key:('a -> 'k) ->
  right_key:('b -> 'k) ->
  'a Dataset.t ->
  'b Dataset.t ->
  ('a * 'b) Dataset.t * stats
(** The classic reduce-side join (how SimSQL executes joins on Hadoop):
    both inputs are tagged, shuffled on their key, and each reducer emits
    the per-key cross product. *)

val sort_by :
  ?pool:Mde_par.Pool.t ->
  cmp:('a -> 'a -> int) ->
  'a Dataset.t ->
  'a Dataset.t * stats
(** Parallel sample sort: sample partition boundaries, route each record
    to its range partition (counted as shuffle), sort partitions locally
    (one range per domain under [?pool]). The concatenated output is
    globally sorted, and the sort is {e stable}: records comparing equal
    keep their input order, matching [Algebra.order_by]'s row oracle
    with or without a pool. *)

val reset_global_counter : unit -> unit
val global_records_shuffled : unit -> int
(** Cumulative shuffle volume across all jobs since the last reset; used
    by benchmarks that run multi-job pipelines. *)
