type stats = {
  records_mapped : int;
  records_shuffled : int;
  records_reduced : int;
  partitions : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "mapped=%d shuffled=%d reduced=%d partitions=%d"
    s.records_mapped s.records_shuffled s.records_reduced s.partitions

let global_shuffled = ref 0
let reset_global_counter () = global_shuffled := 0
let global_records_shuffled () = !global_shuffled

(* Group (key, value) pairs by key, preserving first-seen key order and
   per-key emission order — shared by the combiner and the reduce phase.
   The defaults reproduce a polymorphic hash table; relational callers
   pass [Value.Key.hash]/[Value.Key.equal] so NaN and cross-type numeric
   keys group as one (structural equality matches neither). *)
let group_pairs ?(hash = Hashtbl.hash) ?(equal = ( = )) pairs =
  let buckets = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (k, v) ->
      let h = hash k in
      let bucket =
        match Hashtbl.find_opt buckets h with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add buckets h b;
          b
      in
      match List.find_opt (fun (k', _) -> equal k' k) !bucket with
      | Some (_, vs) -> vs := v :: !vs
      | None ->
        let vs = ref [ v ] in
        bucket := (k, vs) :: !bucket;
        order := (k, vs) :: !order)
    pairs;
  List.rev_map (fun (k, vs) -> (k, List.rev !vs)) !order

let map_reduce ?pool ?reduce_partitions ?(hash = Hashtbl.hash) ?(equal = ( = ))
    ?combine ~map ~reduce input =
  let in_parts = Dataset.partitions input in
  let n_reduce =
    match reduce_partitions with
    | Some n ->
      (* Not an assert: validation must survive [-noassert] builds. *)
      if n <= 0 then invalid_arg "Job.map_reduce: reduce_partitions must be positive";
      n
    | None -> Array.length in_parts
  in
  (* Map phase (local to each input partition): independent per
     partition, so it fans out over the pool when one is supplied. *)
  let map_partition part =
    let mapped = ref 0 in
    let emitted = ref [] in
    Array.iter
      (fun record ->
        incr mapped;
        List.iter (fun kv -> emitted := kv :: !emitted) (map record))
      part;
    let emitted = List.rev !emitted in
    (* Optional combiner: group locally and pre-reduce before shuffling. *)
    let to_shuffle =
      match combine with
      | None -> emitted
      | Some combiner ->
        List.concat_map
          (fun (k, vs) -> List.map (fun v -> (k, v)) (combiner k vs))
          (group_pairs ~hash ~equal emitted)
    in
    (!mapped, to_shuffle)
  in
  let mapped_parts = Mde_par.Pool.map ?pool ~site:"mapred.map" map_partition in_parts in
  let records_mapped = Array.fold_left (fun acc (m, _) -> acc + m) 0 mapped_parts in
  (* Shuffle: route sequentially so every reduce bucket accumulates its
     (key, value) pairs in the same arrival order with or without a
     pool. Only true cross-partition traffic (dest <> src) is charged to
     the shuffle, whatever the reduce-side partition count. *)
  let records_shuffled = ref 0 in
  let buckets = Array.init n_reduce (fun _ -> ref []) in
  Array.iteri
    (fun src_part (_, to_shuffle) ->
      List.iter
        (fun (k, v) ->
          let dest = hash k mod n_reduce in
          if dest <> src_part then begin
            incr records_shuffled;
            incr global_shuffled
          end;
          buckets.(dest) := (k, v) :: !(buckets.(dest)))
        to_shuffle)
    mapped_parts;
  (* Reduce phase: group by key per partition, preserving first-seen
     order; partitions are independent, so this fans out too. *)
  let reduced_parts =
    Mde_par.Pool.map ?pool ~site:"mapred.reduce"
      (fun bucket ->
        let grouped = group_pairs ~hash ~equal (List.rev !bucket) in
        let outputs =
          List.concat_map (fun (k, vs) -> reduce k vs) grouped
        in
        (Array.of_list outputs, List.length grouped))
      buckets
  in
  let out_parts = Array.map fst reduced_parts in
  let records_reduced = Array.fold_left (fun acc (_, g) -> acc + g) 0 reduced_parts in
  ( Dataset.of_partitions out_parts,
    {
      records_mapped;
      records_shuffled = !records_shuffled;
      records_reduced;
      partitions = n_reduce;
    } )

let equi_join ?pool ?partitions ?hash ?equal ~left_key ~right_key left right =
  (* Tag records by side, union the datasets, shuffle on the key, and
     cross the sides within each reduce group. *)
  let tagged =
    Dataset.of_partitions
      (Array.append
         (Dataset.partitions (Dataset.map (fun a -> `Left a) left))
         (Dataset.partitions (Dataset.map (fun b -> `Right b) right)))
  in
  let reduce_partitions =
    match partitions with
    | Some p -> p
    | None -> Dataset.partition_count left + Dataset.partition_count right
  in
  map_reduce ?pool ~reduce_partitions ?hash ?equal
    ~map:(fun tagged_record ->
      match tagged_record with
      | `Left a -> [ (left_key a, `Left a) ]
      | `Right b -> [ (right_key b, `Right b) ])
    ~reduce:(fun _key values ->
      let lefts = List.filter_map (function `Left a -> Some a | `Right _ -> None) values in
      let rights = List.filter_map (function `Right b -> Some b | `Left _ -> None) values in
      List.concat_map (fun a -> List.map (fun b -> (a, b)) rights) lefts)
    tagged

let sort_by ?pool ~cmp input =
  let parts = Dataset.partitions input in
  let n_parts = Array.length parts in
  let total = Dataset.total_length input in
  if total = 0 then
    ( input,
      { records_mapped = 0; records_shuffled = 0; records_reduced = 0; partitions = n_parts }
    )
  else begin
    (* Sample sort: take evenly spaced samples as range boundaries. *)
    let all = Dataset.to_array input in
    let sample = Array.copy all in
    Array.sort cmp sample;
    let boundaries =
      Array.init (n_parts - 1) (fun i -> sample.((i + 1) * total / n_parts))
    in
    let dest_of x =
      (* First range whose boundary exceeds x. *)
      let rec go i =
        if i >= Array.length boundaries then n_parts - 1
        else if cmp x boundaries.(i) < 0 then i
        else go (i + 1)
      in
      go 0
    in
    let buckets = Array.make n_parts [] in
    let shuffled = ref 0 in
    Array.iteri
      (fun src part ->
        Array.iter
          (fun x ->
            let dest = dest_of x in
            if dest <> src then begin
              incr shuffled;
              incr global_shuffled
            end;
            buckets.(dest) <- x :: buckets.(dest))
          part)
      parts;
    (* Local sorts are independent per range partition. Array.sort is
       not stable; sort (record, arrival index) pairs so equal-key
       records keep their arrival (= input) order, the same idiom as
       Algebra.order_by — otherwise the sample sort and the sequential
       oracle disagree on duplicate keys. *)
    let out =
      Mde_par.Pool.map ?pool ~site:"mapred.sort"
        (fun bucket ->
          let indexed = Array.of_list (List.rev bucket) in
          let indexed = Array.mapi (fun i x -> (x, i)) indexed in
          Array.sort
            (fun (x, i) (y, j) ->
              let c = cmp x y in
              if c <> 0 then c else Int.compare i j)
            indexed;
          Array.map fst indexed)
        buckets
    in
    ( Dataset.of_partitions out,
      {
        records_mapped = total;
        records_shuffled = !shuffled;
        records_reduced = 0;
        partitions = n_parts;
      } )
  end
