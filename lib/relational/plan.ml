type t =
  | Scan of string
  | Select of Expr.t * t
  | Project of string list * t
  | Join of (string * string) list * t * t

let scan name = Scan name
let select pred plan = Select (pred, plan)
let project cols plan = Project (cols, plan)
let join ~on left right = Join (on, left, right)

let rec schema_of catalog = function
  | Scan name -> Table.schema (Catalog.find catalog name)
  | Select (_, child) -> schema_of catalog child
  | Project (cols, child) -> Schema.project (schema_of catalog child) cols
  | Join (_, l, r) -> Schema.concat (schema_of catalog l) (schema_of catalog r)

let rec execute_rows catalog = function
  | Scan name -> Catalog.find catalog name
  | Select (pred, child) -> Algebra.select pred (execute_rows catalog child)
  | Project (cols, child) -> Algebra.project cols (execute_rows catalog child)
  | Join (on, l, r) ->
    Algebra.equi_join ~on (execute_rows catalog l) (execute_rows catalog r)

let execute ?pool ?(impl = (`Kernel : Impl.t)) catalog plan =
  let rec go = function
    | Scan name -> Columnar.of_table (Catalog.find catalog name)
    | Select (pred, child) -> Columnar.select ?pool ~impl pred (go child)
    | Project (cols, child) -> Columnar.project cols (go child)
    | Join (on, l, r) -> Columnar.equi_join ?pool ~on (go l) (go r)
  in
  Columnar.to_table (go plan)

(* --- estimation --- *)

(* Environment: per-column estimated distinct count, threaded bottom-up. *)
module Env = Map.Make (String)

let scan_env catalog name =
  let table = Catalog.find catalog name in
  List.fold_left
    (fun env col ->
      let stats = Catalog.column_stats catalog name col in
      Env.add col (Float.max 1. (float_of_int stats.Catalog.distinct)) env)
    Env.empty
    (Schema.column_names (Table.schema table))

let distinct_of env col = Option.value ~default:10. (Env.find_opt col env)

let rec selectivity env expr =
  let open Expr in
  match expr with
  | Eq (Col c, Lit _) | Eq (Lit _, Col c) -> 1. /. distinct_of env c
  | Eq (Col a, Col b) -> 1. /. Float.max (distinct_of env a) (distinct_of env b)
  | Eq _ | Ne _ -> 0.5
  | Lt _ | Le _ | Gt _ | Ge _ -> 1. /. 3.
  | And (a, b) -> selectivity env a *. selectivity env b
  | Or (a, b) -> Float.min 1. (selectivity env a +. selectivity env b)
  | Not a -> Float.max 0. (1. -. selectivity env a)
  | Is_null _ -> 0.1
  | Lit (Value.Bool true) -> 1.
  | Lit (Value.Bool false) -> 0.
  | Col _ | Lit _ | Add _ | Sub _ | Mul _ | Div _ | Neg _ | If _ -> 0.5

let rec estimate catalog = function
  | Scan name ->
    (float_of_int (Catalog.row_count catalog name), scan_env catalog name)
  | Select (pred, child) ->
    let rows, env = estimate catalog child in
    let rows = rows *. selectivity env pred in
    (* Distinct counts cannot exceed the (estimated) row count. *)
    (rows, Env.map (fun d -> Float.min d (Float.max 1. rows)) env)
  | Project (cols, child) ->
    let rows, env = estimate catalog child in
    (rows, Env.filter (fun c _ -> List.mem c cols) env)
  | Join (on, l, r) ->
    let l_rows, l_env = estimate catalog l in
    let r_rows, r_env = estimate catalog r in
    let key_factor =
      List.fold_left
        (fun acc (a, b) ->
          Float.max acc (Float.max (distinct_of l_env a) (distinct_of r_env b)))
        1. on
    in
    (l_rows *. r_rows /. key_factor, Env.union (fun _ a _ -> Some a) l_env r_env)

let estimate_rows catalog plan = fst (estimate catalog plan)

type cost = { estimated_rows : float; intermediate_rows : float }

let estimate_cost catalog plan =
  let rec go plan =
    let rows = estimate_rows catalog plan in
    let below =
      match plan with
      | Scan _ -> 0.
      | Select (_, c) | Project (_, c) -> go c
      | Join (_, l, r) -> go l +. go r
    in
    rows +. below
  in
  { estimated_rows = estimate_rows catalog plan; intermediate_rows = go plan }

(* --- selection pushdown --- *)

let rec conjuncts = function
  | Expr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let covered schema pred =
  List.for_all (Schema.mem schema) (Expr.columns_used pred)

let wrap_selects plan preds =
  List.fold_left (fun p pred -> Select (pred, p)) plan preds

let push_selections catalog plan =
  (* [go plan preds] sinks [preds] (all applicable to plan's schema) as
     deep as possible and returns the rewritten plan. *)
  let rec go plan preds =
    match plan with
    | Scan _ -> wrap_selects plan preds
    | Select (e, child) -> go child (conjuncts e @ preds)
    | Project (cols, child) ->
      (* Preds only mention projected columns, all of which the child
         also has — push through. *)
      Project (cols, go child preds)
    | Join (on, l, r) ->
      let ls = schema_of catalog l and rs = schema_of catalog r in
      let left_preds, rest = List.partition (covered ls) preds in
      let right_preds, stay = List.partition (covered rs) rest in
      wrap_selects (Join (on, go l left_preds, go r right_preds)) stay
  in
  go plan []

(* --- join ordering --- *)

(* A maximal chain of inner equi-joins: its leaf sub-plans and key pairs. *)
let rec flatten = function
  | Join (on, l, r) ->
    let l_leaves, l_pairs = flatten l in
    let r_leaves, r_pairs = flatten r in
    (l_leaves @ r_leaves, on @ l_pairs @ r_pairs)
  | leaf -> ([ leaf ], [])

let order_join_chain catalog leaves pairs =
  match leaves with
  | [] | [ _ ] -> None
  | _ :: _ :: _ ->
    let n = List.length leaves in
    let leaves = Array.of_list leaves in
    let schemas = Array.map (schema_of catalog) leaves in
    let used = Array.make n false in
    (* Start from the smallest-cardinality leaf. *)
    let start = ref 0 in
    Array.iteri
      (fun i leaf ->
        if estimate_rows catalog leaf < estimate_rows catalog leaves.(!start) then
          start := i)
      leaves;
    used.(!start) <- true;
    let acc_plan = ref leaves.(!start) in
    let acc_schema = ref schemas.(!start) in
    let remaining_pairs = ref pairs in
    let ok = ref true in
    (try
       for _ = 2 to n do
         (* Candidates: unused leaves connected to the accumulated plan by
            at least one key pair. *)
         let candidates = ref [] in
         for i = 0 to n - 1 do
           if not used.(i) then begin
             let applicable =
               List.filter
                 (fun (a, b) ->
                   (Schema.mem !acc_schema a && Schema.mem schemas.(i) b)
                   || (Schema.mem !acc_schema b && Schema.mem schemas.(i) a))
                 !remaining_pairs
             in
             if applicable <> [] then candidates := (i, applicable) :: !candidates
           end
         done;
         match !candidates with
         | [] ->
           (* Disconnected chain (would need a cross product): bail out. *)
           ok := false;
           raise Exit
         | cands ->
           let score (i, applicable) =
             let oriented =
               List.map
                 (fun (a, b) ->
                   if Schema.mem !acc_schema a then (a, b) else (b, a))
                 applicable
             in
             let candidate = Join (oriented, !acc_plan, leaves.(i)) in
             (estimate_rows catalog candidate, i, oriented)
           in
           let scored = List.map score cands in
           let best =
             List.fold_left
               (fun (br, bi, bo) (r, i, o) ->
                 if r < br then (r, i, o) else (br, bi, bo))
               (List.hd scored) (List.tl scored)
           in
           let _, i, oriented = best in
           acc_plan := Join (oriented, !acc_plan, leaves.(i));
           acc_schema := Schema.concat !acc_schema schemas.(i);
           used.(i) <- true;
           remaining_pairs :=
             List.filter
               (fun (a, b) ->
                 not
                   (List.exists
                      (fun (x, y) -> (x = a && y = b) || (x = b && y = a))
                      oriented))
               !remaining_pairs
       done
     with Exit -> ());
    if !ok then Some !acc_plan else None

let rec order_joins catalog plan =
  match plan with
  | Scan _ -> plan
  | Select (e, child) -> Select (e, order_joins catalog child)
  | Project (cols, child) -> Project (cols, order_joins catalog child)
  | Join (on, l, r) -> (
    let leaves, pairs = flatten plan in
    let leaves = List.map (order_joins catalog) leaves in
    match order_join_chain catalog leaves pairs with
    | Some reordered -> reordered
    | None ->
      (* Disconnected chain (needs a cross product): the flattened chain
         cannot be reordered as a whole, but connected sub-chains under
         this join still can — keep this node and recurse, instead of
         returning the untouched original plan. *)
      Join (on, order_joins catalog l, order_joins catalog r))

let optimize catalog plan = order_joins catalog (push_selections catalog plan)

let rec pp ppf = function
  | Scan name -> Format.fprintf ppf "scan %s" name
  | Select (e, child) -> Format.fprintf ppf "@[<v2>select %a@,%a@]" Expr.pp e pp child
  | Project (cols, child) ->
    Format.fprintf ppf "@[<v2>project [%s]@,%a@]" (String.concat "; " cols) pp child
  | Join (on, l, r) ->
    Format.fprintf ppf "@[<v2>join [%s]@,%a@,%a@]"
      (String.concat "; " (List.map (fun (a, b) -> a ^ "=" ^ b) on))
      pp l pp r
