(** Typed columnar storage for the tuple-bundle engine.

    A bundle stores each attribute as one column rather than boxing every
    cell as a [Value.t]: float attributes live in a float64
    [Bigarray.Array1] (no per-cell boxing, contiguous repetition sweeps),
    int and bool attributes in [int array]s, and string attributes as
    dictionary codes over a per-column dictionary. A column is either
    {e deterministic} (one slot per physical row — every repetition
    agrees) or {e uncertain} (rows × reps slots, repetition-major within
    a row: slot of [(i, r)] is [i * reps + r]). Columns whose cells
    cannot be represented in the typed storage (values that contradict
    the declared type) degrade to a boxed [Value.t array] rather than
    failing, so the engine never rejects data the interpreter accepted.

    {!Bitset} is the packed rows × reps presence bitmap (1 bit per cell,
    8× to 64× smaller than the [bool array array] it replaced) with
    popcount-based survivor counting. Each row's bits start on a byte
    boundary, so parallel workers that own disjoint contiguous row ranges
    touch disjoint bytes — row-chunked writes need no synchronization. *)


module Bitset : sig
  type t

  val create : rows:int -> reps:int -> bool -> t
  (** All bits initialized to the given value. Storage is
      [(reps + 7) / 8] bytes per row. *)

  val rows : t -> int
  val reps : t -> int
  val get : t -> int -> int -> bool
  val set : t -> int -> int -> unit
  val unset : t -> int -> int -> unit

  val clear_row : t -> int -> unit
  (** Zero every bit of one row (a deterministic predicate rejected the
      tuple in all repetitions at once). *)

  val copy : t -> t

  val popcount : t -> int
  (** Total set bits (table-driven byte popcount). *)

  val row_popcount : t -> int -> int
  (** Set bits in one row — repetitions in which the row survives. *)

  val and_rows : dst:t -> int -> a:t -> int -> b:t -> int -> unit
  (** [and_rows ~dst k ~a i ~b j]: row [k] of [dst] becomes the bitwise
      AND of row [i] of [a] and row [j] of [b]. All three must share
      [reps]. The join's presence conjunction, one byte at a time. *)

  val gather_rows : t -> int array -> t
  (** New bitset whose row [k] is row [idx.(k)] of the input. *)
end

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val det : t -> bool
val rows : t -> int
val reps : t -> int

val of_cells : ty:Value.ty -> rows:int -> reps:int -> (int -> int -> Value.t) -> t
(** Build from a cell reader [get i r]. Detects determinism (all rows
    constant across repetitions under [Value.equal]) and selects typed
    storage from [ty], degrading to boxed storage if any cell's type
    contradicts [ty]. *)

val of_det_cells :
  ?pool:Mde_par.Pool.t -> ty:Value.ty -> rows:int -> reps:int -> (int -> Value.t) -> t
(** Deterministic column from a per-row reader (wrapping a plain table);
    [reps] is the owning bundle's repetition count. With [?pool] the
    reader is evaluated row-chunked in parallel and written directly
    into the typed storage (no intermediate boxed array); the result is
    identical to the sequential build. *)

(** Raw constructors for compiled kernels that have already produced
    typed storage. [rows] is inferred from the data length; [nulls], when
    present, must have geometry rows × (det ? 1 : reps). *)

val of_floats : det:bool -> reps:int -> ?nulls:Bitset.t -> floats -> t

val of_ints : det:bool -> reps:int -> ?nulls:Bitset.t -> int array -> t

val of_bools : det:bool -> reps:int -> ?nulls:Bitset.t -> int array -> t
(** Bool storage is 0/1 ints; a distinct constructor so read-back knows
    to rebuild [Value.Bool]. *)

val of_codes : det:bool -> reps:int -> dict:string array -> int array -> t
(** Dictionary-encoded strings; code [-1] is Null. *)

val of_values : det:bool -> reps:int -> Value.t array -> t
(** Boxed fallback storage. *)

(** The kernel compiler's window into the storage. [nulls = None] means
    the column has no Null cells. *)
type view =
  | Vfloat of { vdet : bool; data : floats; nulls : Bitset.t option }
  | Vint of { vdet : bool; data : int array; nulls : Bitset.t option }
  | Vbool of { vdet : bool; data : int array; nulls : Bitset.t option }
  | Vstring of { vdet : bool; codes : int array; dict : string array }
  | Vvalues of { vdet : bool; data : Value.t array }

val view : t -> view

val value : t -> int -> int -> Value.t
(** Boxed read of cell [(i, r)]; deterministic columns ignore [r]. *)

val gather : t -> int array -> t
(** New column whose row [k] is row [idx.(k)] — the join's output
    construction. Dictionaries are shared, not copied. *)
