module Array1 = Bigarray.Array1

module Bitset = struct
  type t = { rows : int; reps : int; stride : int; bits : Bytes.t }

  (* Invariant: bits beyond [reps] in each row's last byte are 0, so
     popcounts can sum whole bytes without masking. *)

  let popcount8 =
    Array.init 256 (fun b ->
        let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
        go b 0)

  let create ~rows ~reps fill =
    if rows < 0 || reps < 0 then invalid_arg "Bitset.create: negative dimension";
    let stride = (reps + 7) / 8 in
    let bits = Bytes.make (rows * stride) (if fill then '\xff' else '\x00') in
    if fill && reps land 7 <> 0 && stride > 0 then begin
      let tail_mask = Char.chr ((1 lsl (reps land 7)) - 1) in
      for i = 0 to rows - 1 do
        Bytes.set bits (((i + 1) * stride) - 1) tail_mask
      done
    end;
    { rows; reps; stride; bits }

  let rows t = t.rows
  let reps t = t.reps

  let get t i r =
    Char.code (Bytes.get t.bits ((i * t.stride) + (r lsr 3))) land (1 lsl (r land 7))
    <> 0

  let set t i r =
    let b = (i * t.stride) + (r lsr 3) in
    Bytes.set t.bits b (Char.chr (Char.code (Bytes.get t.bits b) lor (1 lsl (r land 7))))

  let unset t i r =
    let b = (i * t.stride) + (r lsr 3) in
    Bytes.set t.bits b
      (Char.chr (Char.code (Bytes.get t.bits b) land lnot (1 lsl (r land 7)) land 0xff))

  let copy t = { t with bits = Bytes.copy t.bits }
  let clear_row t i = Bytes.fill t.bits (i * t.stride) t.stride '\x00'

  let popcount t =
    let acc = ref 0 in
    for b = 0 to Bytes.length t.bits - 1 do
      acc := !acc + popcount8.(Char.code (Bytes.unsafe_get t.bits b))
    done;
    !acc

  let row_popcount t i =
    let acc = ref 0 in
    for b = i * t.stride to ((i + 1) * t.stride) - 1 do
      acc := !acc + popcount8.(Char.code (Bytes.unsafe_get t.bits b))
    done;
    !acc

  let and_rows ~dst k ~a i ~b j =
    if a.reps <> b.reps || a.reps <> dst.reps then
      invalid_arg "Bitset.and_rows: repetition counts differ";
    for byte = 0 to dst.stride - 1 do
      Bytes.set dst.bits
        ((k * dst.stride) + byte)
        (Char.chr
           (Char.code (Bytes.get a.bits ((i * a.stride) + byte))
           land Char.code (Bytes.get b.bits ((j * b.stride) + byte))))
    done

  let gather_rows t idx =
    let out = create ~rows:(Array.length idx) ~reps:t.reps false in
    Array.iteri
      (fun k i -> Bytes.blit t.bits (i * t.stride) out.bits (k * t.stride) t.stride)
      idx;
    out
end

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Array1.t

type data =
  | Floats of floats
  | Ints of int array
  | Bools of int array
  | Strings of { codes : int array; dict : string array }
  | Values of Value.t array

type t = {
  cdet : bool;
  crows : int;
  creps : int;
  data : data;
  nulls : Bitset.t option;  (** geometry rows × (det ? 1 : reps); None = no nulls *)
}

let det t = t.cdet
let rows t = t.crows
let reps t = t.creps

(* --- construction ------------------------------------------------- *)

exception Untyped
(* A cell contradicted the declared column type; degrade to boxed. *)

let slots ~det ~rows ~reps = rows * if det then 1 else reps

(* Lazily-created null mask: most columns have none. *)
let make_nulls ~det ~rows ~reps =
  let mask = ref None in
  let mark s =
    let m =
      match !mask with
      | Some m -> m
      | None ->
        let m = Bitset.create ~rows ~reps:(if det then 1 else reps) false in
        mask := Some m;
        m
    in
    if det then Bitset.set m s 0 else Bitset.set m (s / reps) (s mod reps)
  in
  (mask, mark)

let fill_floats ~det ~rows ~reps get =
  let n = slots ~det ~rows ~reps in
  let data = Array1.create Bigarray.float64 Bigarray.c_layout n in
  let mask, mark = make_nulls ~det ~rows ~reps in
  for s = 0 to n - 1 do
    match (get s : Value.t) with
    | Value.Float f -> Array1.set data s f
    | Value.Null ->
      Array1.set data s nan;
      mark s
    | Value.Int _ | Value.String _ | Value.Bool _ -> raise Untyped
  done;
  (Floats data, !mask)

let fill_ints ~det ~rows ~reps get =
  let n = slots ~det ~rows ~reps in
  let data = Array.make n 0 in
  let mask, mark = make_nulls ~det ~rows ~reps in
  for s = 0 to n - 1 do
    match (get s : Value.t) with
    | Value.Int i -> data.(s) <- i
    | Value.Null -> mark s
    | Value.Float _ | Value.String _ | Value.Bool _ -> raise Untyped
  done;
  (Ints data, !mask)

let fill_bools ~det ~rows ~reps get =
  let n = slots ~det ~rows ~reps in
  let data = Array.make n 0 in
  let mask, mark = make_nulls ~det ~rows ~reps in
  for s = 0 to n - 1 do
    match (get s : Value.t) with
    | Value.Bool b -> data.(s) <- Bool.to_int b
    | Value.Null -> mark s
    | Value.Float _ | Value.String _ | Value.Int _ -> raise Untyped
  done;
  (Bools data, !mask)

let fill_strings ~det ~rows ~reps get =
  let n = slots ~det ~rows ~reps in
  let codes = Array.make n (-1) in
  let table : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rev = ref [] in
  let next = ref 0 in
  for s = 0 to n - 1 do
    match (get s : Value.t) with
    | Value.String str ->
      codes.(s) <-
        (match Hashtbl.find_opt table str with
        | Some c -> c
        | None ->
          let c = !next in
          incr next;
          Hashtbl.add table str c;
          rev := str :: !rev;
          c)
    | Value.Null -> ()
    | Value.Float _ | Value.Bool _ | Value.Int _ -> raise Untyped
  done;
  (Strings { codes; dict = Array.of_list (List.rev !rev) }, None)

let fill_values ~det ~rows ~reps get =
  (Values (Array.init (slots ~det ~rows ~reps) get), None)

let build ~ty ~det ~rows ~reps get =
  (* [get] here reads by slot; map back to (i, r). *)
  let data, nulls =
    try
      match (ty : Value.ty) with
      | Value.Tfloat -> fill_floats ~det ~rows ~reps get
      | Value.Tint -> fill_ints ~det ~rows ~reps get
      | Value.Tbool -> fill_bools ~det ~rows ~reps get
      | Value.Tstring -> fill_strings ~det ~rows ~reps get
    with Untyped -> fill_values ~det ~rows ~reps get
  in
  { cdet = det; crows = rows; creps = reps; data; nulls }

let of_cells ~ty ~rows ~reps get =
  if reps < 1 then invalid_arg "Column.of_cells: reps must be >= 1";
  let is_det =
    try
      for i = 0 to rows - 1 do
        let v0 = get i 0 in
        for r = 1 to reps - 1 do
          if not (Value.equal (get i r) v0) then raise Exit
        done
      done;
      true
    with Exit -> false
  in
  if is_det then build ~ty ~det:true ~rows ~reps (fun s -> get s 0)
  else build ~ty ~det:false ~rows ~reps (fun s -> get (s / reps) (s mod reps))

let of_det_cells ?pool ~ty ~rows ~reps get =
  if reps < 1 then invalid_arg "Column.of_det_cells: reps must be >= 1";
  match pool with
  | None -> build ~ty ~det:true ~rows ~reps get
  | Some p ->
    (* Pooled direct fill: rows are chunked over the pool and written
       straight into the typed storage — no intermediate boxed cell
       array. Det storage has one slot and one null-mask byte per row,
       so row-chunked writes touch disjoint memory. A cell contradicting
       [ty] degrades to boxed storage exactly as the sequential build,
       re-evaluating [get]: the rare path pays twice, the common path
       never boxes. *)
    let seal mask = if Bitset.popcount mask = 0 then None else Some mask in
    let data, nulls =
      try
        match (ty : Value.ty) with
        | Value.Tfloat ->
          let data = Array1.create Bigarray.float64 Bigarray.c_layout rows in
          let mask = Bitset.create ~rows ~reps:1 false in
          Mde_par.Pool.parallel_iter p ~site:"column.fill" rows (fun i ->
              match (get i : Value.t) with
              | Value.Float f -> Array1.set data i f
              | Value.Null ->
                Array1.set data i nan;
                Bitset.set mask i 0
              | Value.Int _ | Value.String _ | Value.Bool _ -> raise Untyped);
          (Floats data, seal mask)
        | Value.Tint ->
          let data = Array.make rows 0 in
          let mask = Bitset.create ~rows ~reps:1 false in
          Mde_par.Pool.parallel_iter p ~site:"column.fill" rows (fun i ->
              match (get i : Value.t) with
              | Value.Int v -> data.(i) <- v
              | Value.Null -> Bitset.set mask i 0
              | Value.Float _ | Value.String _ | Value.Bool _ -> raise Untyped);
          (Ints data, seal mask)
        | Value.Tbool ->
          let data = Array.make rows 0 in
          let mask = Bitset.create ~rows ~reps:1 false in
          Mde_par.Pool.parallel_iter p ~site:"column.fill" rows (fun i ->
              match (get i : Value.t) with
              | Value.Bool b -> data.(i) <- Bool.to_int b
              | Value.Null -> Bitset.set mask i 0
              | Value.Float _ | Value.String _ | Value.Int _ -> raise Untyped);
          (Bools data, seal mask)
        | Value.Tstring ->
          (* Dictionary codes are assigned in first-seen order, which is
             inherently sequential: evaluate cells in parallel (that is
             where the expression cost lives), encode sequentially. *)
          let cells = Mde_par.Pool.parallel_init p ~site:"column.fill" rows get in
          fill_strings ~det:true ~rows ~reps (fun s -> cells.(s))
      with Untyped ->
        (Values (Mde_par.Pool.parallel_init p ~site:"column.fill" rows get), None)
    in
    { cdet = true; crows = rows; creps = reps; data; nulls }

let infer_rows ~det ~reps n = if det then n else n / reps

let of_floats ~det ~reps ?nulls data =
  let rows = infer_rows ~det ~reps (Array1.dim data) in
  { cdet = det; crows = rows; creps = reps; data = Floats data; nulls }

let of_ints ~det ~reps ?nulls data =
  let rows = infer_rows ~det ~reps (Array.length data) in
  { cdet = det; crows = rows; creps = reps; data = Ints data; nulls }

let of_bools ~det ~reps ?nulls data =
  let rows = infer_rows ~det ~reps (Array.length data) in
  { cdet = det; crows = rows; creps = reps; data = Bools data; nulls }

let of_codes ~det ~reps ~dict codes =
  let rows = infer_rows ~det ~reps (Array.length codes) in
  { cdet = det; crows = rows; creps = reps; data = Strings { codes; dict }; nulls = None }

let of_values ~det ~reps data =
  let rows = infer_rows ~det ~reps (Array.length data) in
  { cdet = det; crows = rows; creps = reps; data = Values data; nulls = None }

(* --- access ------------------------------------------------------- *)

type view =
  | Vfloat of { vdet : bool; data : floats; nulls : Bitset.t option }
  | Vint of { vdet : bool; data : int array; nulls : Bitset.t option }
  | Vbool of { vdet : bool; data : int array; nulls : Bitset.t option }
  | Vstring of { vdet : bool; codes : int array; dict : string array }
  | Vvalues of { vdet : bool; data : Value.t array }

let view t =
  match t.data with
  | Floats data -> Vfloat { vdet = t.cdet; data; nulls = t.nulls }
  | Ints data -> Vint { vdet = t.cdet; data; nulls = t.nulls }
  | Bools data -> Vbool { vdet = t.cdet; data; nulls = t.nulls }
  | Strings { codes; dict } -> Vstring { vdet = t.cdet; codes; dict }
  | Values data -> Vvalues { vdet = t.cdet; data }

let is_null t i r =
  match t.nulls with
  | None -> false
  | Some m -> Bitset.get m i (if t.cdet then 0 else r)

let value t i r =
  let s = if t.cdet then i else (i * t.creps) + r in
  match t.data with
  | Floats a -> if is_null t i r then Value.Null else Value.Float (Array1.get a s)
  | Ints a -> if is_null t i r then Value.Null else Value.Int a.(s)
  | Bools a -> if is_null t i r then Value.Null else Value.Bool (a.(s) <> 0)
  | Strings { codes; dict } ->
    let c = codes.(s) in
    if c < 0 then Value.Null else Value.String dict.(c)
  | Values a -> a.(s)

let gather t idx =
  let out_rows = Array.length idx in
  let block = if t.cdet then 1 else t.creps in
  let gather_int src =
    let dst = Array.make (out_rows * block) 0 in
    if block = 1 then
      Array.iteri (fun k i -> Array.unsafe_set dst k (Array.unsafe_get src i)) idx
    else Array.iteri (fun k i -> Array.blit src (i * block) dst (k * block) block) idx;
    dst
  in
  let data =
    match t.data with
    | Floats a ->
      let dst = Array1.create Bigarray.float64 Bigarray.c_layout (out_rows * block) in
      (* Element loops, not Array1.sub + blit: sub allocates a bigarray
         proxy per call, which dominates a row-at-a-time gather. *)
      if block = 1 then
        Array.iteri (fun k i -> Array1.unsafe_set dst k (Array1.unsafe_get a i)) idx
      else
        Array.iteri
          (fun k i ->
            for r = 0 to block - 1 do
              Array1.unsafe_set dst ((k * block) + r)
                (Array1.unsafe_get a ((i * block) + r))
            done)
          idx;
      Floats dst
    | Ints a -> Ints (gather_int a)
    | Bools a -> Bools (gather_int a)
    | Strings { codes; dict } -> Strings { codes = gather_int codes; dict }
    | Values a ->
      let dst = Array.make (out_rows * block) Value.Null in
      Array.iteri (fun k i -> Array.blit a (i * block) dst (k * block) block) idx;
      Values dst
  in
  let nulls = Option.map (fun m -> Bitset.gather_rows m idx) t.nulls in
  { cdet = t.cdet; crows = out_rows; creps = t.creps; data; nulls }
