(** The columnar relational engine: {!Algebra}'s operators over typed
    column storage ({!Column}) with {!Kernel}-compiled expressions.

    A value of type {!t} is the deterministic reps=1 specialization of
    the tuple-bundle layout: one typed column per schema column (floats
    in a float64 bigarray, ints/bools unboxed, strings
    dictionary-coded), nulls in a packed {!Column.Bitset}. Operators
    come in two implementations, selected per call like the tuple-bundle
    engine's: [`Kernel] (default) compiles predicates, computed columns
    and aggregate sources to typed closures and falls back per
    expression when the compiler does not cover one; [`Interpreter]
    forces the row-at-a-time fallback everywhere and is the bit-identity
    oracle.

    The contract, property-tested in [test/test_relational.ml]: every
    operator returns exactly what its {!Algebra} twin returns on the
    same input — same rows in the same order with bit-identical floats
    — under either implementation, with or without a pool. Group
    aggregates feed rows in row order (float sums are order-sensitive),
    joins emit probe-order × build-order pairs, sorts are stable with
    the same [Value.compare] key order. *)

type t

type impl = Impl.t
(** = [[ `Kernel | `Interpreter ]]; the shared selector ({!Impl.t}). *)

val of_table : Table.t -> t
val to_table : t -> Table.t
val schema : t -> Schema.t
val row_count : t -> int

val select : ?pool:Mde_par.Pool.t -> ?impl:impl -> Expr.t -> t -> t
(** σ, preserving row order. With [?pool] the predicate is evaluated
    row-chunked in parallel (bit-identical: each row's flag is
    independent). *)

val project : string list -> t -> t
(** π onto existing columns — O(1) per column, nothing is copied. *)

val extend : ?pool:Mde_par.Pool.t -> ?impl:impl -> (string * Value.ty * Expr.t) list -> t -> t
(** Append computed columns; every defining expression reads the input
    schema (not columns added by earlier defs), as {!Algebra.extend}. *)

val equi_join :
  ?pool:Mde_par.Pool.t -> ?packed:bool -> on:(string * string) list -> t -> t -> t
(** Inner hash join, build side right, probe side left — the plan
    executor's join. Row order and null-key behavior match
    {!Algebra.equi_join}. When the key columns encode ([packed],
    default [true]), both sides hash one unboxed {!Keycode} word (or
    packed bytes) per row through an open-addressing table with
    build-order match chains; otherwise the boxed [Value.Tbl] path
    runs. With [?pool] the key encoding and the probe are row-chunked
    in parallel — per-chunk match buffers concatenate in row order, so
    the output is bit-identical whatever the chunking. *)

val group_by :
  ?pool:Mde_par.Pool.t ->
  ?packed:bool ->
  ?impl:impl ->
  keys:string list ->
  aggs:(string * Algebra.aggregate) list ->
  t ->
  t
(** Grouped aggregation with {!Algebra.group_by}'s exact semantics:
    first-seen group order, NaN keys collapse to one group, [keys = []]
    yields one global row even on empty input. Under [`Kernel] the
    Sum/Avg/Std/Count paths accumulate unboxed; if any aggregate's
    source fails to compile the whole call drops to the row oracle.
    When the key columns encode ([packed], default [true]) each row's
    composite key is one {!Keycode} word instead of a boxed list, and
    the output columns are built directly (keys gathered from each
    group's first row). With [?pool] the key encoding and the aggregate
    sources are evaluated row-chunked in parallel into scratch buffers;
    accumulation always replays sequentially in row order, so pooled
    results are bit-identical to sequential ones. *)

val order_by : ?descending:bool -> ?packed:bool -> string list -> t -> t
(** Stable sort via typed per-column comparators agreeing with
    [Value.compare] — or, when every key column normalizes ([packed],
    default [true]), via one packed order-preserving {!Keycode} image
    per row (ints, bools, dictionary ranks; the row index rides in the
    low bits as the tiebreak) and a flat monomorphic int sort. Both
    produce the same permutation. *)

val distinct : ?pool:Mde_par.Pool.t -> ?packed:bool -> t -> t
(** First occurrence of each distinct row, in row order; packed all-column
    {!Keycode} keys when they encode, boxed [Value.Tbl] otherwise. *)

val limit : int -> t -> t
(** Raises [Invalid_argument] on a negative count. *)
