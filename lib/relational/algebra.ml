let select pred table =
  let schema = Table.schema table in
  let keep = Array.of_list
      (Array.fold_right
         (fun row acc -> if Expr.eval_bool schema row pred then row :: acc else acc)
         (Table.rows table) [])
  in
  Table.of_rows schema keep

let project names table =
  let schema = Table.schema table in
  let idxs = List.map (Schema.column_index schema) names in
  let out_schema = Schema.project schema names in
  let rows =
    Array.map
      (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs))
      (Table.rows table)
  in
  Table.of_rows out_schema rows

let extend defs table =
  let schema = Table.schema table in
  let added = Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) defs) in
  let out_schema = Schema.concat schema added in
  let exprs = Array.of_list (List.map (fun (_, _, e) -> e) defs) in
  let rows =
    Array.map
      (fun row ->
        Array.append row (Array.map (fun e -> Expr.eval schema row e) exprs))
      (Table.rows table)
  in
  Table.of_rows out_schema rows

let rename renames table =
  Table.of_rows (Schema.rename (Table.schema table) renames) (Table.rows table)

type join_kind = Inner | Left

let equi_join ?(kind = Inner) ~on left right =
  let ls = Table.schema left and rs = Table.schema right in
  let out_schema = Schema.concat ls rs in
  let l_idx = List.map (fun (l, _) -> Schema.column_index ls l) on in
  let r_idx = List.map (fun (_, r) -> Schema.column_index rs r) on in
  let key_of idxs row = List.map (fun i -> row.(i)) idxs in
  (* Build a hash table over the right (build) side. [Value.Tbl] keys
     the probe by [Value.equal]/[Value.hash], so NaN keys match
     themselves and Int/Float keys match numerically — the structural
     Hashtbl this replaced silently dropped both. *)
  let build = Value.Tbl.create (max 16 (Table.cardinality right)) in
  Array.iter
    (fun row ->
      let key = key_of r_idx row in
      if not (List.exists Value.is_null key) then
        Value.Tbl.add build key row)
    (Table.rows right);
  let null_pad = Array.make (Schema.arity rs) Value.Null in
  let out = ref [] in
  Array.iter
    (fun lrow ->
      let key = key_of l_idx lrow in
      let matches =
        if List.exists Value.is_null key then []
        else Value.Tbl.find_all build key
      in
      match (matches, kind) with
      | [], Inner -> ()
      | [], Left -> out := Array.append lrow null_pad :: !out
      | matches, (Inner | Left) ->
        (* find_all returns most-recent first; restore build order. *)
        List.iter
          (fun rrow -> out := Array.append lrow rrow :: !out)
          (List.rev matches))
    (Table.rows left);
  Table.of_rows out_schema (Array.of_list (List.rev !out))

let theta_join ~on left right =
  let out_schema = Schema.concat (Table.schema left) (Table.schema right) in
  let out = ref [] in
  Array.iter
    (fun lrow ->
      Array.iter
        (fun rrow ->
          let combined = Array.append lrow rrow in
          if Expr.eval_bool out_schema combined on then out := combined :: !out)
        (Table.rows right))
    (Table.rows left);
  Table.of_rows out_schema (Array.of_list (List.rev !out))

let key_membership ~on left right =
  let ls = Table.schema left and rs = Table.schema right in
  let l_idx = List.map (fun (l, _) -> Schema.column_index ls l) on in
  let r_idx = List.map (fun (_, r) -> Schema.column_index rs r) on in
  let members = Value.Tbl.create (max 16 (Table.cardinality right)) in
  Array.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) r_idx in
      if not (List.exists Value.is_null key) then Value.Tbl.replace members key ())
    (Table.rows right);
  fun lrow ->
    let key = List.map (fun i -> lrow.(i)) l_idx in
    (not (List.exists Value.is_null key)) && Value.Tbl.mem members key

let semi_join ~on left right =
  let matches = key_membership ~on left right in
  Table.of_rows (Table.schema left)
    (Array.of_list
       (Array.fold_right
          (fun row acc -> if matches row then row :: acc else acc)
          (Table.rows left) []))

let anti_join ~on left right =
  let matches = key_membership ~on left right in
  Table.of_rows (Table.schema left)
    (Array.of_list
       (Array.fold_right
          (fun row acc -> if matches row then acc else row :: acc)
          (Table.rows left) []))

type aggregate =
  | Count
  | Count_if of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Std of Expr.t

(* Per-group accumulator state for one aggregate. *)
type acc = {
  mutable count : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable vmin : Value.t;
  mutable vmax : Value.t;
}

let fresh_acc () =
  { count = 0; sum = 0.; sum_sq = 0.; vmin = Value.Null; vmax = Value.Null }

let feed_acc agg schema row acc =
  let feed_numeric e =
    match Expr.eval schema row e with
    | Value.Null -> ()
    | v ->
      let x = Value.to_float v in
      acc.count <- acc.count + 1;
      acc.sum <- acc.sum +. x;
      acc.sum_sq <- acc.sum_sq +. (x *. x);
      if Value.is_null acc.vmin || Value.compare v acc.vmin < 0 then acc.vmin <- v;
      if Value.is_null acc.vmax || Value.compare v acc.vmax > 0 then acc.vmax <- v
  in
  match agg with
  | Count -> acc.count <- acc.count + 1
  | Count_if e -> if Expr.eval_bool schema row e then acc.count <- acc.count + 1
  | Sum e | Avg e | Min e | Max e | Std e -> feed_numeric e

let finish_acc agg acc =
  match agg with
  | Count | Count_if _ -> Value.Int acc.count
  | Sum _ -> Value.Float acc.sum
  | Avg _ -> if acc.count = 0 then Value.Null else Value.Float (acc.sum /. float_of_int acc.count)
  | Min _ -> acc.vmin
  | Max _ -> acc.vmax
  | Std _ ->
    if acc.count < 2 then Value.Null
    else begin
      let n = float_of_int acc.count in
      let var = (acc.sum_sq -. (acc.sum *. acc.sum /. n)) /. (n -. 1.) in
      Value.Float (sqrt (Float.max var 0.))
    end

let agg_type = function
  | Count | Count_if _ -> Value.Tint
  | Sum _ | Avg _ | Min _ | Max _ | Std _ -> Value.Tfloat

let group_by ~keys ~aggs table =
  let schema = Table.schema table in
  let key_idx = List.map (Schema.column_index schema) keys in
  let key_schema_cols =
    List.map (fun k -> (k, Schema.column_type schema k)) keys
  in
  let out_schema =
    Schema.of_list (key_schema_cols @ List.map (fun (n, a) -> (n, agg_type a)) aggs)
  in
  (* Keyed by [Value.hash]: a NaN group key used to raise [Not_found]
     in the lookup below because structural equality never matched it. *)
  let groups : acc array Value.Tbl.t = Value.Tbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) key_idx in
      let accs =
        match Value.Tbl.find_opt groups key with
        | Some accs -> accs
        | None ->
          let accs = Array.of_list (List.map (fun _ -> fresh_acc ()) aggs) in
          Value.Tbl.add groups key accs;
          order := key :: !order;
          accs
      in
      List.iteri (fun i (_, agg) -> feed_acc agg schema row accs.(i)) aggs)
    (Table.rows table);
  let keys_in_order =
    match (!order, keys) with
    | [], [] ->
      (* Global aggregate over an empty or non-empty table: one row. *)
      if Value.Tbl.length groups = 0 then begin
        Value.Tbl.add groups []
          (Array.of_list (List.map (fun _ -> fresh_acc ()) aggs));
        [ [] ]
      end
      else [ [] ]
    | found, _ -> List.rev found
  in
  let out_rows =
    List.map
      (fun key ->
        let accs = Value.Tbl.find groups key in
        Array.of_list
          (key @ List.mapi (fun i (_, agg) -> finish_acc agg accs.(i)) aggs))
      keys_in_order
  in
  Table.create out_schema out_rows

let order_by ?(descending = false) names table =
  let schema = Table.schema table in
  let idxs = List.map (Schema.column_index schema) names in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | i :: rest ->
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go rest
    in
    let c = go idxs in
    if descending then -c else c
  in
  let rows = Array.copy (Table.rows table) in
  (* Array.sort is not stable; sort (row, original index) pairs instead. *)
  let indexed = Array.mapi (fun i row -> (row, i)) rows in
  Array.sort
    (fun (a, ia) (b, ib) ->
      let c = cmp a b in
      if c <> 0 then c else Int.compare ia ib)
    indexed;
  Table.of_rows schema (Array.map fst indexed)

let distinct table =
  let seen = Value.Tbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun row ->
      let key = Array.to_list row in
      if not (Value.Tbl.mem seen key) then begin
        Value.Tbl.add seen key ();
        out := row :: !out
      end)
    (Table.rows table);
  Table.of_rows (Table.schema table) (Array.of_list (List.rev !out))

let union = Table.append

let limit n table =
  (* Not an assert: validation must survive [-noassert] builds. *)
  if n < 0 then invalid_arg "Algebra.limit: negative row count";
  let rows = Table.rows table in
  Table.of_rows (Table.schema table) (Array.sub rows 0 (min n (Array.length rows)))
