(** Compilation of {!Mde_relational.Expr} trees into typed closures over
    columnar storage ({!Column}).

    A compiled node evaluates one cell [(row, rep)] with no [Value.t]
    boxing: int-valued expressions run on native ints, float-valued ones
    on a float64 bigarray sweep, string equality on dictionary entries.
    Null is tracked by a separate is-null closure, so the value closure
    of a null cell may return a dummy — consumers must consult the null
    closure first, exactly as the compilers below do.

    Coverage: column reads of typed storage, literals (except [Lit
    Null]), [+ - *] (int when both sides are int, float otherwise, as
    the interpreter's [arith]), [/] (always float), [Neg], comparisons
    between two ints ([Int.compare] semantics), mixed numerics
    ([Float.compare] semantics — NaN below everything, matching
    [Value.compare] bit for bit), two strings, or two bools; [And]/[Or]/
    [Not] over boolean operands (Null-as-false, as [eval_bool]);
    [Is_null]; [If] with boolean condition and same-kind branches.
    Everything else — boxed fallback columns, [Lit Null], cross-kind
    comparisons, mixed-kind [If] branches — makes {!compile} return
    [None] and the caller falls back to the interpreter, which by
    construction gives the same answer (or raises the same error).
    {!Mde_relational.Expr.typeof} is the static side of this contract. *)


type env
(** Named compiled columns: the base bundle columns plus any computed
    nodes a fused plan has introduced. *)

type node
(** A compiled expression. *)

val env_of_columns : Schema.t -> reps:int -> Column.t array -> env
val env_extend : env -> (string * node) list -> env

val compile : env -> Expr.t -> node option
(** [None] = not covered; evaluate with {!Expr.eval} instead. *)

val node_unc : node -> bool
(** Whether the node reads any uncertain column: [false] means every
    repetition yields the same value, so one evaluation at rep 0
    covers them all. *)

val node_value : node -> int -> int -> Value.t
(** Boxed read-back of one cell — for deterministic group keys and
    materializing computed columns into instances. *)

val as_pred : node -> (int -> int -> bool) option
(** Predicate view with [eval_bool] semantics (Null counts false);
    [None] unless the node is boolean. *)

type cell = {
  value : int -> int -> float;  (** [Value.to_float] image; see [null] *)
  null : int -> int -> bool;  (** the cell contributes nothing when true *)
  cell_unc : bool;
}

val as_float_cell : node -> cell option
(** Aggregation view: numeric and bool nodes coerce as [Value.to_float];
    string nodes return [None] (the interpreter path raises, as it always
    did). *)

val materialize : ?pool:Mde_par.Pool.t -> rows:int -> reps:int -> node -> Column.t
(** Evaluate a node into a typed column (deterministic iff [not
    (node_unc node)]). Row-chunked over the pool when given — each chunk
    writes disjoint rows, so the result is bit-identical to the
    sequential fill. String nodes build their dictionary sequentially. *)
