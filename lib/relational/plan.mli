(** Logical query plans and a cost-based optimizer.

    §2.3 argues that composite-model platforms "need to execute queries
    in order to harmonize data between models during a simulation run, so
    that the problem of simulation-experiment optimization subsumes the
    problem of query optimization", with catalog statistics playing the
    same role in both. This module supplies that classical half: a
    logical-plan algebra, catalog-driven cardinality estimation, and the
    two canonical rewrites — selection pushdown and greedy join ordering
    — with the cost model exposed so the savings are observable. *)

type t =
  | Scan of string  (** a catalog table *)
  | Select of Expr.t * t
  | Project of string list * t
  | Join of (string * string) list * t * t  (** equi-join on key pairs *)

val scan : string -> t
val select : Expr.t -> t -> t
val project : string list -> t -> t
val join : on:(string * string) list -> t -> t -> t

val schema_of : Catalog.t -> t -> Schema.t
(** Output schema of the plan. Raises [Not_found] for unknown tables or
    columns. *)

val execute : ?pool:Mde_par.Pool.t -> ?impl:Impl.t -> Catalog.t -> t -> Table.t
(** Evaluate the plan bottom-up on the columnar substrate ({!Columnar}),
    bit-identical to {!execute_rows}: same rows, same order, same float
    bits. [?impl] ({!Impl.t}) selects compiled kernels (default) or the
    interpreter oracle, as the tuple-bundle engine does; [?pool] fans
    predicate evaluation out row-chunked. *)

val execute_rows : Catalog.t -> t -> Table.t
(** Evaluate the plan row-at-a-time with the {!Algebra} operators — the
    legacy path, kept as the oracle the columnar executor is
    property-tested against. *)

(** {2 Cardinality and cost estimation} *)

val estimate_rows : Catalog.t -> t -> float
(** Textbook selectivity model: scans use catalog row counts; an equality
    predicate on column c selects 1/distinct(c); other comparisons 1/3;
    conjunctions multiply, disjunctions add (capped); equi-joins use
    |L|·|R| / max(distinct keys). *)

type cost = {
  estimated_rows : float;  (** of the plan's result *)
  intermediate_rows : float;
      (** Σ of estimated rows produced by every operator — the work a
          pipeline must materialize; the optimizer's objective *)
}

val estimate_cost : Catalog.t -> t -> cost

(** {2 Optimization} *)

val push_selections : Catalog.t -> t -> t
(** Split conjunctive predicates and sink each conjunct to the lowest
    operator whose schema covers its columns (through projections that
    keep the columns, into either side of a join when one side suffices). *)

val order_joins : Catalog.t -> t -> t
(** Flatten chains of inner equi-joins and re-associate them greedily,
    smallest estimated intermediate result first. Only joins whose key
    pairs remain resolvable against the reordered inputs are moved. *)

val optimize : Catalog.t -> t -> t
(** [push_selections] then [order_joins]. Semantics-preserving: the
    optimized plan returns the same rows (possibly in different order) —
    property-tested. *)

val pp : Format.formatter -> t -> unit
