(** Atomic values stored in relational tables. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type ty = Tint | Tfloat | Tstring | Tbool

val type_of : t -> ty option
(** [None] for [Null]. *)

val type_name : ty -> string

val compare : t -> t -> int
(** Total order: Null < Bool < Int/Float (numeric order, cross-type) <
    String. Ints and floats compare numerically so that a join or sort key
    may mix them. *)

val equal : t -> t -> bool

val hash : t -> int
(** Compatible with [equal] (equal values hash identically), which the
    polymorphic [Hashtbl.hash] is {e not}: all NaN floats are [equal]
    under [Float.compare] yet structurally distinct, and [Int i] equals
    [Float (float_of_int i)]. Hash-join and group-by keys must use this
    (via {!Key}/{!Tbl}) or NaN keys crash or silently fail to match. *)

val is_null : t -> bool

val to_float : t -> float
(** Numeric coercion; Bool maps to 0/1. Raises [Invalid_argument] on
    String/Null. *)

val to_int : t -> int
(** Raises [Invalid_argument] unless the value is Int or a Bool. *)

val to_bool : t -> bool
(** Raises [Invalid_argument] unless the value is Bool. *)

val to_string_value : t -> string
(** Raises [Invalid_argument] unless the value is String. *)

val pp : Format.formatter -> t -> unit
val to_display : t -> string

module Key : Hashtbl.HashedType with type t = t list
(** Composite keys (one value per key column) under {!equal}/{!hash}. *)

module Tbl : Hashtbl.S with type key = t list
(** The hash table every join/group-by in the tree must use: keyed by
    {!Key}, so NaN and cross-type numeric keys behave per {!compare}. *)
