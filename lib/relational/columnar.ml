(* The columnar relational table: the deterministic reps=1 specialization
   of the tuple-bundle storage ([Column]/[Bitset]) carrying the [Algebra]
   operators. Predicates and computed columns compile to typed closures
   via [Kernel]; anything the compiler does not cover — and everything
   under [`Interpreter] — evaluates with [Expr.eval]/[Expr.eval_bool] on
   a realized row, which doubles as the bit-identity oracle. Every
   operator reproduces its [Algebra] twin bit for bit: same row order,
   same float accumulation order, same error behavior on well-formed
   inputs. *)

module Array1 = Bigarray.Array1

type t = { tschema : Schema.t; n_rows : int; cols : Column.t array }

type impl = Impl.t

let schema t = t.tschema
let row_count t = t.n_rows

(* Invariant: every column is deterministic (one slot per row, reps=1),
   so slot s = row i everywhere below. *)

let of_table table =
  let tschema = Table.schema table in
  let rows = Table.rows table in
  let n_rows = Array.length rows in
  let cols =
    Array.of_list
      (List.mapi
         (fun j (c : Schema.column) ->
           Column.of_det_cells ~ty:c.ty ~rows:n_rows ~reps:1 (fun i -> rows.(i).(j)))
         (Schema.columns tschema))
  in
  { tschema; n_rows; cols }

let row t i = Array.map (fun c -> Column.value c i 0) t.cols
let to_table t = Table.of_rows t.tschema (Array.init t.n_rows (fun i -> row t i))
let env t = Kernel.env_of_columns t.tschema ~reps:1 t.cols

(* Row-chunked parallel fill over disjoint per-row slots: bit-identical
   to the sequential loop (same argument as [Kernel.materialize]). *)
let fill_rows ?pool ~site n f = Mde_par.Pool.iter ?pool ~site n f

let gather t idx =
  {
    tschema = t.tschema;
    n_rows = Array.length idx;
    cols = Array.map (fun c -> Column.gather c idx) t.cols;
  }

let select ?pool ?(impl = (`Kernel : impl)) pred t =
  let test =
    let compiled =
      match impl with
      | `Interpreter -> None
      | `Kernel -> Option.bind (Kernel.compile (env t) pred) Kernel.as_pred
    in
    match compiled with
    | Some p -> fun i -> p i 0
    | None -> fun i -> Expr.eval_bool t.tschema (row t i) pred
  in
  let flags = Array.make t.n_rows false in
  fill_rows ?pool ~site:"columnar.select" t.n_rows (fun i -> flags.(i) <- test i);
  let n_keep = Array.fold_left (fun n b -> if b then n + 1 else n) 0 flags in
  let idx = Array.make n_keep 0 in
  let k = ref 0 in
  Array.iteri
    (fun i b ->
      if b then begin
        idx.(!k) <- i;
        incr k
      end)
    flags;
  gather t idx

let project names t =
  let idxs = List.map (Schema.column_index t.tschema) names in
  {
    tschema = Schema.project t.tschema names;
    n_rows = t.n_rows;
    cols = Array.of_list (List.map (fun j -> t.cols.(j)) idxs);
  }

let extend ?pool ?(impl = (`Kernel : impl)) defs t =
  let added = Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) defs) in
  let out_schema = Schema.concat t.tschema added in
  let kenv = env t in
  (* Every defining expression reads the input schema, as Algebra.extend. *)
  let interpret ty e =
    Column.of_det_cells ?pool ~ty ~rows:t.n_rows ~reps:1 (fun i ->
        Expr.eval t.tschema (row t i) e)
  in
  let build (_, ty, e) =
    let compiled =
      match impl with `Interpreter -> None | `Kernel -> Kernel.compile kenv e
    in
    match compiled with
    | Some node -> Kernel.materialize ?pool ~rows:t.n_rows ~reps:1 node
    | None -> interpret ty e
  in
  {
    tschema = out_schema;
    n_rows = t.n_rows;
    cols = Array.append t.cols (Array.of_list (List.map build defs));
  }

(* A growable unboxed int buffer: the join's per-chunk match lists. *)
type ibuf = { mutable ib : int array; mutable ilen : int }

let ibuf_create () = { ib = Array.make 64 0; ilen = 0 }

let ibuf_push b v =
  if b.ilen = Array.length b.ib then begin
    let bigger = Array.make (2 * b.ilen) 0 in
    Array.blit b.ib 0 bigger 0 b.ilen;
    b.ib <- bigger
  end;
  b.ib.(b.ilen) <- v;
  b.ilen <- b.ilen + 1

let no_nulls = function
  | None -> fun _ -> false
  | Some (flags : bool array) -> fun i -> flags.(i)

let equi_join ?pool ?(packed = true) ~on l r =
  let out_schema = Schema.concat l.tschema r.tschema in
  let l_idx = List.map (fun (a, _) -> Schema.column_index l.tschema a) on in
  let r_idx = List.map (fun (_, b) -> Schema.column_index r.tschema b) on in
  let emit li ri =
    {
      tschema = out_schema;
      n_rows = Array.length li;
      cols =
        Array.append
          (Array.map (fun c -> Column.gather c li) l.cols)
          (Array.map (fun c -> Column.gather c ri) r.cols);
    }
  in
  (* Build right, probe left in row order, emit matches in build order —
     the exact row order Algebra.equi_join produces. Null keys never
     match. *)
  let key_cols t idxs = Array.of_list (List.map (fun j -> t.cols.(j)) idxs) in
  let enc =
    if packed && on <> [] then
      Keycode.of_columns [ key_cols r r_idx; key_cols l l_idx ]
    else None
  in
  match enc with
  | Some enc ->
    (* Packed path: one unboxed key per row, an open-addressing build
       table, and build-order match chains (head/next/tail per key id)
       replacing the boxed Value.Tbl + find_all + List.rev churn. *)
    let bcoded = Keycode.encode ?pool enc ~side:0 in
    let pcoded = Keycode.encode ?pool enc ~side:1 in
    let bnull = no_nulls bcoded.null_rows and pnull = no_nulls pcoded.null_rows in
    let tbl = Keycode.tbl_create ~hint:r.n_rows bcoded.keys in
    let head = ref (Array.make (max 16 (r.n_rows / 4)) (-1)) in
    let tail = ref (Array.make (Array.length !head) (-1)) in
    let next = Array.make r.n_rows (-1) in
    for j = 0 to r.n_rows - 1 do
      if not (bnull j) then begin
        let id = Keycode.tbl_add tbl j in
        if id >= Array.length !head then begin
          let grow a =
            let bigger = Array.make (2 * Array.length a) (-1) in
            Array.blit a 0 bigger 0 (Array.length a);
            bigger
          in
          head := grow !head;
          tail := grow !tail
        end;
        if !head.(id) < 0 then !head.(id) <- j else next.(!tail.(id)) <- j;
        !tail.(id) <- j
      end
    done;
    let head = !head in
    let probe_into buf lo hi =
      for i = lo to hi - 1 do
        if not (pnull i) then begin
          let id = Keycode.tbl_find tbl pcoded.keys i in
          if id >= 0 then begin
            let j = ref head.(id) in
            while !j >= 0 do
              ibuf_push buf i;
              ibuf_push buf !j;
              j := next.(!j)
            done
          end
        end
      done
    in
    let bufs =
      match pool with
      | None ->
        let buf = ibuf_create () in
        probe_into buf 0 l.n_rows;
        [| buf |]
      | Some p ->
        (* Deterministic chunk descriptors, one private buffer each:
           every row's matches land in its own chunk's buffer, and the
           in-order concatenation below restores exactly the sequential
           emission order whatever the chunk count. *)
        let n_chunks = min (max 1 l.n_rows) (Mde_par.Pool.domains p * 8) in
        let per = (l.n_rows + n_chunks - 1) / n_chunks in
        let bufs = Array.init n_chunks (fun _ -> ibuf_create ()) in
        Mde_par.Pool.parallel_iter p ~site:"columnar.join.probe" ~chunk:1 n_chunks
          (fun c -> probe_into bufs.(c) (c * per) (min l.n_rows ((c + 1) * per)));
        bufs
    in
    let n_pairs = Array.fold_left (fun n b -> n + (b.ilen / 2)) 0 bufs in
    let li = Array.make n_pairs 0 and ri = Array.make n_pairs 0 in
    let k = ref 0 in
    Array.iter
      (fun b ->
        let p = ref 0 in
        while !p < b.ilen do
          li.(!k) <- b.ib.(!p);
          ri.(!k) <- b.ib.(!p + 1);
          incr k;
          p := !p + 2
        done)
      bufs;
    emit li ri
  | None ->
    let key_of t idxs i = List.map (fun j -> Column.value t.cols.(j) i 0) idxs in
    let build = Value.Tbl.create (max 16 r.n_rows) in
    for j = 0 to r.n_rows - 1 do
      let key = key_of r r_idx j in
      if not (List.exists Value.is_null key) then Value.Tbl.add build key j
    done;
    let pairs = ref [] in
    for i = 0 to l.n_rows - 1 do
      let key = key_of l l_idx i in
      if not (List.exists Value.is_null key) then
        (* find_all returns most-recent first; restore build order. *)
        List.iter
          (fun j -> pairs := (i, j) :: !pairs)
          (List.rev (Value.Tbl.find_all build key))
    done;
    let pairs = Array.of_list (List.rev !pairs) in
    emit (Array.map fst pairs) (Array.map snd pairs)

(* --- grouped aggregation -------------------------------------------- *)

(* Typed per-group accumulator, one per (group, aggregate). The same
   shape as Algebra's: count/sum/sum_sq fed in row order so float sums
   come out bit-identical, min/max kept as boxed values under
   [Value.compare] with first-of-equals retained. Sum/Avg/Std feeders
   skip the min/max updates (unobservable through their finishers) to
   stay unboxed on the hot path. *)
type kacc = {
  mutable kcount : int;
  mutable ksum : float;
  mutable ksum_sq : float;
  mutable kvmin : Value.t;
  mutable kvmax : Value.t;
}

let fresh_kacc () =
  { kcount = 0; ksum = 0.; ksum_sq = 0.; kvmin = Value.Null; kvmax = Value.Null }

type feeder = { feed : kacc -> int -> unit; finish : kacc -> Value.t }

let finish_count a = Value.Int a.kcount
let finish_sum a = Value.Float a.ksum

let finish_avg a =
  if a.kcount = 0 then Value.Null
  else Value.Float (a.ksum /. float_of_int a.kcount)

let finish_std a =
  if a.kcount < 2 then Value.Null
  else begin
    let n = float_of_int a.kcount in
    let var = (a.ksum_sq -. (a.ksum *. a.ksum /. n)) /. (n -. 1.) in
    Value.Float (sqrt (Float.max var 0.))
  end

(* Pooled aggregation is two-phase, like Bundle's pooled sweeps: the
   per-row source values are evaluated row-chunked into a flat scratch
   buffer (each row owns its slot), then the order-sensitive
   accumulation replays from the scratch sequentially in row order — so
   the pooled result is the sequential result bit for bit. *)

let float_feeder ?pool ~rows kenv e finish =
  Option.map
    (fun (cell : Kernel.cell) ->
      let null, value =
        match pool with
        | None -> ((fun i -> cell.null i 0), fun i -> cell.value i 0)
        | Some _ ->
          let data = Array1.create Bigarray.float64 Bigarray.c_layout rows in
          let nulls = Bytes.make rows '\000' in
          Mde_par.Pool.iter ?pool ~site:"columnar.group.scratch" rows (fun i ->
              if cell.null i 0 then Bytes.set nulls i '\001'
              else Array1.set data i (cell.value i 0));
          ((fun i -> Bytes.get nulls i <> '\000'), fun i -> Array1.get data i)
      in
      let feed a i =
        if not (null i) then begin
          let x = value i in
          a.kcount <- a.kcount + 1;
          a.ksum <- a.ksum +. x;
          a.ksum_sq <- a.ksum_sq +. (x *. x)
        end
      in
      { feed; finish })
    (Option.bind (Kernel.compile kenv e) Kernel.as_float_cell)

(* Min/Max read the boxed cell so string inputs raise in [Value.to_float]
   exactly as the row oracle's feed does. *)
let value_feeder ?pool ~rows kenv e finish =
  Option.map
    (fun node ->
      let read =
        match pool with
        | None -> fun i -> Kernel.node_value node i 0
        | Some _ ->
          let vals =
            Mde_par.Pool.init ?pool ~site:"columnar.group.scratch" rows (fun i ->
                Kernel.node_value node i 0)
          in
          fun i -> vals.(i)
      in
      let feed a i =
        match read i with
        | Value.Null -> ()
        | v ->
          let x = Value.to_float v in
          a.kcount <- a.kcount + 1;
          a.ksum <- a.ksum +. x;
          a.ksum_sq <- a.ksum_sq +. (x *. x);
          if Value.is_null a.kvmin || Value.compare v a.kvmin < 0 then a.kvmin <- v;
          if Value.is_null a.kvmax || Value.compare v a.kvmax > 0 then a.kvmax <- v
      in
      { feed; finish })
    (Kernel.compile kenv e)

let compile_feeder ?pool ~rows kenv = function
  | Algebra.Count ->
    Some { feed = (fun a _ -> a.kcount <- a.kcount + 1); finish = finish_count }
  | Algebra.Count_if e ->
    Option.map
      (fun p ->
        let test =
          match pool with
          | None -> fun i -> p i 0
          | Some _ ->
            let flags = Bytes.make rows '\000' in
            Mde_par.Pool.iter ?pool ~site:"columnar.group.scratch" rows (fun i ->
                if p i 0 then Bytes.set flags i '\001');
            fun i -> Bytes.get flags i <> '\000'
        in
        {
          feed = (fun a i -> if test i then a.kcount <- a.kcount + 1);
          finish = finish_count;
        })
      (Option.bind (Kernel.compile kenv e) Kernel.as_pred)
  | Algebra.Sum e -> float_feeder ?pool ~rows kenv e finish_sum
  | Algebra.Avg e -> float_feeder ?pool ~rows kenv e finish_avg
  | Algebra.Std e -> float_feeder ?pool ~rows kenv e finish_std
  | Algebra.Min e -> value_feeder ?pool ~rows kenv e (fun a -> a.kvmin)
  | Algebra.Max e -> value_feeder ?pool ~rows kenv e (fun a -> a.kvmax)

let group_by ?pool ?(packed = true) ?(impl = (`Kernel : impl)) ~keys ~aggs t =
  let feeders =
    match impl with
    | `Interpreter -> None
    | `Kernel ->
      let kenv = env t in
      let rec all = function
        | [] -> Some []
        | (_, a) :: rest ->
          Option.bind (compile_feeder ?pool ~rows:t.n_rows kenv a) (fun f ->
              Option.map (fun fs -> f :: fs) (all rest))
      in
      Option.map Array.of_list (all aggs)
  in
  match feeders with
  | None ->
    (* Any aggregate the compiler does not cover drops the whole group-by
       to the row oracle itself — identical by construction. *)
    of_table (Algebra.group_by ~keys ~aggs (to_table t))
  | Some feeders ->
    let key_cols =
      Array.of_list (List.map (fun k -> t.cols.(Schema.column_index t.tschema k)) keys)
    in
    let key_schema_cols = List.map (fun k -> (k, Schema.column_type t.tschema k)) keys in
    let out_schema =
      Schema.of_list
        (key_schema_cols @ List.map (fun (n, a) -> (n, Algebra.agg_type a)) aggs)
    in
    let n_aggs = Array.length feeders in
    let enc = if packed then Keycode.of_columns [ key_cols ] else None in
    (match enc with
    | Some enc ->
      (* Packed path: one unboxed key per row replaces the per-row boxed
         [Value.t list]; group ids come out of the open-addressing table
         in first-seen order, accumulators still feed in row order, so
         the output is the generic path's bit for bit. Output columns
         are built directly — keys by gathering each group's first
         (representative) row, aggregates from the finishers. *)
      let coded = Keycode.encode ?pool enc ~side:0 in
      let tbl = Keycode.tbl_create ~hint:(max 16 (t.n_rows / 8)) coded.keys in
      let accs_store = ref (Array.make 16 [||]) in
      let rep_store = ref (Array.make 16 0) in
      let n_groups = ref 0 in
      for i = 0 to t.n_rows - 1 do
        let id = Keycode.tbl_add tbl i in
        if id = !n_groups then begin
          if id = Array.length !accs_store then begin
            let grow fill a =
              let bigger = Array.make (2 * Array.length a) fill in
              Array.blit a 0 bigger 0 (Array.length a);
              bigger
            in
            accs_store := grow [||] !accs_store;
            rep_store := grow 0 !rep_store
          end;
          !accs_store.(id) <- Array.init n_aggs (fun _ -> fresh_kacc ());
          !rep_store.(id) <- i;
          incr n_groups
        end;
        let accs = !accs_store.(id) in
        Array.iteri (fun a f -> f.feed accs.(a) i) feeders
      done;
      let n_groups = !n_groups in
      let accs_store = !accs_store in
      let rep_idx = Array.sub !rep_store 0 n_groups in
      let key_out = Array.map (fun c -> Column.gather c rep_idx) key_cols in
      let agg_out =
        Array.of_list
          (List.mapi
             (fun a (_, agg) ->
               Column.of_det_cells ~ty:(Algebra.agg_type agg) ~rows:n_groups ~reps:1
                 (fun g -> feeders.(a).finish accs_store.(g).(a)))
             aggs)
      in
      { tschema = out_schema; n_rows = n_groups; cols = Array.append key_out agg_out }
    | None ->
      let groups : kacc array Value.Tbl.t = Value.Tbl.create 64 in
      let order = ref [] in
      for i = 0 to t.n_rows - 1 do
        let key = Array.to_list (Array.map (fun c -> Column.value c i 0) key_cols) in
        let accs =
          match Value.Tbl.find_opt groups key with
          | Some accs -> accs
          | None ->
            let accs = Array.init n_aggs (fun _ -> fresh_kacc ()) in
            Value.Tbl.add groups key accs;
            order := key :: !order;
            accs
        in
        Array.iteri (fun a f -> f.feed accs.(a) i) feeders
      done;
      let keys_in_order =
        match (!order, keys) with
        | [], [] ->
          (* Global aggregate over an empty table still emits one row. *)
          Value.Tbl.add groups [] (Array.init n_aggs (fun _ -> fresh_kacc ()));
          [ [] ]
        | found, _ -> List.rev found
      in
      let out_rows =
        List.map
          (fun key ->
            let accs = Value.Tbl.find groups key in
            Array.of_list
              (key @ Array.to_list (Array.mapi (fun a f -> f.finish accs.(a)) feeders)))
          keys_in_order
      in
      of_table (Table.create out_schema out_rows))

(* --- ordering, distinct, limit -------------------------------------- *)

(* Per-column typed comparator agreeing with [Value.compare] on a typed
   column's possible values: Null sorts below everything, floats through
   [Float.compare] (NaN lowest, -0. < 0.), strings through the
   dictionary. *)
let cmp_nulls is_null cmp i j =
  match (is_null i, is_null j) with
  | true, true -> 0
  | true, false -> -1
  | false, true -> 1
  | false, false -> cmp i j

let slot_compare col =
  let masked nulls =
    match nulls with
    | None -> fun _ -> false
    | Some m -> fun i -> Column.Bitset.get m i 0
  in
  match Column.view col with
  | Column.Vfloat { data; nulls; _ } ->
    cmp_nulls (masked nulls) (fun i j -> Float.compare (Array1.get data i) (Array1.get data j))
  | Column.Vint { data; nulls; _ } ->
    cmp_nulls (masked nulls) (fun i j -> Int.compare data.(i) data.(j))
  | Column.Vbool { data; nulls; _ } ->
    (* 0/1 under Int.compare agrees with Bool.compare. *)
    cmp_nulls (masked nulls) (fun i j -> Int.compare data.(i) data.(j))
  | Column.Vstring { codes; dict; _ } ->
    cmp_nulls
      (fun i -> codes.(i) < 0)
      (fun i j -> String.compare dict.(codes.(i)) dict.(codes.(j)))
  | Column.Vvalues { data; _ } -> fun i j -> Value.compare data.(i) data.(j)

let order_by ?(descending = false) ?(packed = true) names t =
  let cols =
    Array.of_list (List.map (fun k -> t.cols.(Schema.column_index t.tschema k)) names)
  in
  match
    if packed then Keycode.sort_perm ~descending cols ~n_rows:t.n_rows else None
  with
  | Some perm ->
    (* One extracted normalized key per row: the packed image agrees
       with the comparator chain below on order and ties, so the
       permutation is identical. *)
    gather t perm
  | None ->
  let cmps = Array.to_list (Array.map slot_compare cols) in
  let key_cmp i j =
    let rec go = function
      | [] -> 0
      | c :: rest ->
        let v = c i j in
        if v <> 0 then v else go rest
    in
    go cmps
  in
  let perm = Array.init t.n_rows Fun.id in
  (* Array.sort is not stable; break ties on the original index, exactly
     as Algebra.order_by (descending negates keys, never the tiebreak). *)
  Array.sort
    (fun a b ->
      let c =
        let c = key_cmp a b in
        if descending then -c else c
      in
      if c <> 0 then c else Int.compare a b)
    perm;
  gather t perm

let distinct ?pool ?(packed = true) t =
  let enc =
    if packed && Array.length t.cols > 0 then Keycode.of_columns [ t.cols ] else None
  in
  match enc with
  | Some enc ->
    (* A row is kept iff its packed key is fresh; dense first-seen ids
       make "fresh" one integer comparison. Null cells are ordinary key
       codes here — Null = Null under Value.Key, exactly as the boxed
       path's [Value.Tbl.mem]. *)
    let coded = Keycode.encode ?pool enc ~side:0 in
    let tbl = Keycode.tbl_create ~hint:(max 16 (t.n_rows / 4)) coded.keys in
    let keep = ibuf_create () in
    for i = 0 to t.n_rows - 1 do
      if Keycode.tbl_add tbl i = keep.ilen then ibuf_push keep i
    done;
    gather t (Array.sub keep.ib 0 keep.ilen)
  | None ->
    let seen = Value.Tbl.create 64 in
    let idx = ref [] in
    let n = ref 0 in
    for i = 0 to t.n_rows - 1 do
      let key = Array.to_list (row t i) in
      if not (Value.Tbl.mem seen key) then begin
        Value.Tbl.add seen key ();
        idx := i :: !idx;
        incr n
      end
    done;
    gather t (Array.of_list (List.rev !idx))

let limit n t =
  (* Not an assert: validation must survive [-noassert] builds. *)
  if n < 0 then invalid_arg "Columnar.limit: negative row count";
  gather t (Array.init (min n t.n_rows) Fun.id)
