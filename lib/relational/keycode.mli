(** Packed key codes: unboxed composite hash and sort keys read directly
    from columnar storage.

    Every keyed operator used to realize one boxed [Value.t list] per
    row ([Array.to_list] + a {!Value.Tbl} probe) just to ask "same key?"
    This module encodes a composite key into an unboxed form instead —
    one immediate [int] word per row when the key fits (ranged ints,
    bools, dictionary string codes, a null sentinel), a packed [Bytes.t]
    otherwise (float bit images, wide ints) — with the encoding exactly
    {e injective} with respect to {!Value.Key} equality:

    - [Int i] and [Float f] are one key when numerically equal under
      [Float.compare], so mixed numeric components encode both through
      the same canonical float image (ints are validated to have an
      exact image, else the encoder refuses);
    - every NaN payload is one key ([Float.compare nan nan = 0]): all
      NaNs collapse to one image;
    - [-0.0] and [0.0] are one key ([Float.compare (-0.) 0. = 0]): both
      collapse to the [+0.0] image;
    - [Null] is a key distinct from every value (its own sentinel code);
    - string dictionary codes are {e per column}, so multi-column
      encodings (join sides) translate through a shared dictionary
      rather than comparing raw codes.

    Anything the encoder cannot represent injectively — boxed [Vvalues]
    storage, uncertain (non-det) columns, int magnitudes whose float
    image is inexact next to float-typed mates — makes {!of_columns}
    return [None] and the caller keeps its boxed [Value.Tbl] path, which
    is the bit-identity oracle anyway. *)

type t
(** An encoder over one or more aligned sets of key columns ("sides"):
    group/distinct pass one side, a join passes the build and probe
    sides so component encodings (int offsets, shared string
    dictionaries) agree across both. *)

val of_columns : Column.t array list -> t option
(** [of_columns sides] analyses the key columns (all sides must list the
    same number of components; component [c] pairs [sides.(s).(c)]
    across sides). Involves one unboxed scan per int component (value
    range, float-image exactness) and a dictionary merge per string
    component. [None] when any component cannot be encoded injectively,
    and for an empty component list (key-less operators have their own
    degenerate paths). *)

type keys =
  | Kint of int array  (** one immediate word per row *)
  | Kbytes of bytes array  (** packed tagged bytes per row *)

type coded = {
  keys : keys;
  null_rows : bool array option;
      (** [Some flags]: [flags.(i)] iff any component of row [i] is
          Null — the rows a join must skip. [None] = no nulls anywhere
          in the side's key columns. *)
}

val encode : ?pool:Mde_par.Pool.t -> t -> side:int -> coded
(** Encode every row of one side. Row-chunked over the pool when given;
    each row's slots are disjoint, so the pooled fill is bit-identical
    to the sequential one. A single no-null int component is returned
    zero-copy (the column's own storage). *)

(** {2 Key tables}

    First-seen id assignment over encoded keys: the hash side of
    group/join/distinct without any boxing. Int keys go through an
    open-addressing table (linear probing, multiplicative hashing);
    bytes keys through a [Hashtbl] keyed by [Bytes]. *)

type tbl

val tbl_create : hint:int -> keys -> tbl
(** A table that will be fed rows of [keys] (the build side). *)

val tbl_add : tbl -> int -> int
(** [tbl_add t i]: the id of build row [i]'s key, inserting it if new.
    Ids are dense and in first-seen order: a fresh key gets id
    [tbl_count t] (pre-insertion). *)

val tbl_find : tbl -> keys -> int -> int
(** [tbl_find t probe i]: the id of probe row [i]'s key, or [-1] if the
    key was never added. [probe] must come from the same encoder (a
    different side is the point). *)

val tbl_count : tbl -> int
(** Number of distinct keys added so far. *)

val int_hash : int -> int
(** The table's non-negative int mix, exposed for callers that route by
    packed code (MapReduce shuffle partitioning). *)

(** {2 Normalized sort keys} *)

val sort_perm : ?descending:bool -> Column.t array -> n_rows:int -> int array option
(** The stable multi-key sort permutation via one extracted normalized
    key per row instead of a per-column comparator chain: each
    component maps order-preservingly onto a packed integer (Null
    lowest, ints offset, bools 0/1, strings by dictionary {e rank}),
    the row index rides in the low bits as the tiebreak, and one flat
    [int array] sort replaces the closure chain. [descending] reverses
    the key order, never the tiebreak, exactly like
    {!Algebra.order_by}. [None] when a component does not normalize
    (floats, boxed storage) or the packed image would not fit — the
    caller keeps its comparator path. *)
