type t =
  | Col of string
  | Lit of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | If of t * t * t

let col name = Col name
let int i = Lit (Value.Int i)
let float f = Lit (Value.Float f)
let string s = Lit (Value.String s)
let bool b = Lit (Value.Bool b)

let arith name fi ff a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> Value.Int (fi x y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
    Value.Float (ff (Value.to_float a) (Value.to_float b))
  | (Value.String _ | Value.Bool _), _ | _, (Value.String _ | Value.Bool _) ->
    invalid_arg (Printf.sprintf "Expr: %s on non-numeric values" name)

let compare_values op a b =
  if Value.is_null a || Value.is_null b then Value.Bool false
  else Value.Bool (op (Value.compare a b) 0)

let rec eval schema row expr =
  match expr with
  | Col name -> row.(Schema.column_index schema name)
  | Lit v -> v
  | Add (a, b) -> arith "+" Stdlib.( + ) Stdlib.( +. ) (eval schema row a) (eval schema row b)
  | Sub (a, b) -> arith "-" Stdlib.( - ) Stdlib.( -. ) (eval schema row a) (eval schema row b)
  | Mul (a, b) -> arith "*" Stdlib.( * ) Stdlib.( *. ) (eval schema row a) (eval schema row b)
  | Div (a, b) ->
    let x = eval schema row a and y = eval schema row b in
    if Value.is_null x || Value.is_null y then Value.Null
    else Value.Float (Value.to_float x /. Value.to_float y)
  | Neg a -> begin
    match eval schema row a with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int (Stdlib.( - ) 0 i)
    | Value.Float f -> Value.Float (-.f)
    | Value.String _ | Value.Bool _ -> invalid_arg "Expr: negation of non-numeric"
  end
  | Eq (a, b) -> compare_values Stdlib.( = ) (eval schema row a) (eval schema row b)
  | Ne (a, b) -> compare_values Stdlib.( <> ) (eval schema row a) (eval schema row b)
  | Lt (a, b) -> compare_values Stdlib.( < ) (eval schema row a) (eval schema row b)
  | Le (a, b) -> compare_values Stdlib.( <= ) (eval schema row a) (eval schema row b)
  | Gt (a, b) -> compare_values Stdlib.( > ) (eval schema row a) (eval schema row b)
  | Ge (a, b) -> compare_values Stdlib.( >= ) (eval schema row a) (eval schema row b)
  | And (a, b) -> Value.Bool (eval_bool schema row a && eval_bool schema row b)
  | Or (a, b) -> Value.Bool (eval_bool schema row a || eval_bool schema row b)
  | Not a -> Value.Bool (not (eval_bool schema row a))
  | Is_null a -> Value.Bool (Value.is_null (eval schema row a))
  | If (c, t, e) -> if eval_bool schema row c then eval schema row t else eval schema row e

and eval_bool schema row expr =
  match eval schema row expr with
  | Value.Bool b -> b
  | Value.Null -> false
  | Value.Int _ | Value.Float _ | Value.String _ ->
    invalid_arg "Expr.eval_bool: non-boolean expression"

let columns_used expr =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec go = function
    | Col name ->
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        order := name :: !order
      end
    | Lit _ -> ()
    | Neg a | Not a | Is_null a -> go a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b)
    | Eq (a, b) | Ne (a, b) | Lt (a, b) | Le (a, b) | Gt (a, b) | Ge (a, b)
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | If (a, b, c) ->
      go a;
      go b;
      go c
  in
  go expr;
  List.rev !order

let rec typeof lookup = function
  | Col name -> lookup name
  | Lit v -> Value.type_of v
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> begin
    match (typeof lookup a, typeof lookup b) with
    | Some Value.Tint, Some Value.Tint -> Some Value.Tint
    | Some (Value.Tint | Value.Tfloat), Some (Value.Tint | Value.Tfloat) ->
      Some Value.Tfloat
    | _ -> None
  end
  | Div (a, b) -> begin
    match (typeof lookup a, typeof lookup b) with
    | Some (Value.Tint | Value.Tfloat), Some (Value.Tint | Value.Tfloat) ->
      Some Value.Tfloat
    | _ -> None
  end
  | Neg a -> begin
    match typeof lookup a with
    | Some (Value.Tint | Value.Tfloat) as ty -> ty
    | _ -> None
  end
  | Eq _ | Ne _ | Lt _ | Le _ | Gt _ | Ge _ | And _ | Or _ | Not _ | Is_null _ ->
    Some Value.Tbool
  | If (_, t, e) -> begin
    match (typeof lookup t, typeof lookup e) with
    | Some ty1, Some ty2 when Stdlib.( = ) ty1 ty2 -> Some ty1
    | _ -> None
  end

let rec pp ppf = function
  | Col name -> Format.pp_print_string ppf name
  | Lit v -> Value.pp ppf v
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
  | Eq (a, b) -> Format.fprintf ppf "(%a = %a)" pp a pp b
  | Ne (a, b) -> Format.fprintf ppf "(%a <> %a)" pp a pp b
  | Lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp a pp b
  | Le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp a pp b
  | Gt (a, b) -> Format.fprintf ppf "(%a > %a)" pp a pp b
  | Ge (a, b) -> Format.fprintf ppf "(%a >= %a)" pp a pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
  | Is_null a -> Format.fprintf ppf "(%a IS NULL)" pp a
  | If (c, t, e) -> Format.fprintf ppf "(IF %a THEN %a ELSE %a)" pp c pp t pp e

(* Smart-constructor operators come last so that the stdlib operators they
   shadow remain available to the implementation above. *)
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( = ) a b = Eq (a, b)
let ( <> ) a b = Ne (a, b)
let ( < ) a b = Lt (a, b)
let ( <= ) a b = Le (a, b)
let ( > ) a b = Gt (a, b)
let ( >= ) a b = Ge (a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let not_ a = Not a
