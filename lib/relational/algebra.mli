(** Relational algebra over materialized {!Table}s.

    Everything MCDB (§2.1) and Indemics (§2.4) need from the "relational
    database engine" side: selection, projection with computed columns,
    renaming, hash equi-joins plus general theta joins, grouped
    aggregation, sorting, distinct, union, limit. *)

val select : Expr.t -> Table.t -> Table.t
(** σ: keep rows where the predicate is true. *)

val project : string list -> Table.t -> Table.t
(** π onto existing columns (order given by the list). *)

val extend : (string * Value.ty * Expr.t) list -> Table.t -> Table.t
(** Append computed columns (name, declared type, defining expression). *)

val rename : (string * string) list -> Table.t -> Table.t

type join_kind = Inner | Left
(** Left joins pad unmatched left rows with Nulls on the right. *)

val equi_join :
  ?kind:join_kind -> on:(string * string) list -> Table.t -> Table.t -> Table.t
(** Hash join on equality of the paired (left column, right column) keys.
    Column names must not clash between the two inputs; {!rename} first.
    Build side is the right input. *)

val theta_join : on:Expr.t -> Table.t -> Table.t -> Table.t
(** Nested-loop join with an arbitrary predicate over the concatenated
    schema. *)

val semi_join : on:(string * string) list -> Table.t -> Table.t -> Table.t
(** Left rows with at least one key match on the right (each left row at
    most once) — the "members of this subpopulation who are infected"
    query shape. *)

val anti_join : on:(string * string) list -> Table.t -> Table.t -> Table.t
(** Left rows with no key match on the right. *)

(** Aggregate functions for {!group_by}. [Count_if] counts rows where the
    predicate holds; the rest take a source expression. *)
type aggregate =
  | Count
  | Count_if of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Std of Expr.t  (** sample standard deviation (n−1) *)

val group_by :
  keys:string list -> aggs:(string * aggregate) list -> Table.t -> Table.t
(** Output schema: the key columns followed by one column per aggregate
    (Count/Count_if are Int, others Float). With [keys = []] the result
    is a single global-aggregate row. Groups appear in first-seen order.
    Null inputs are skipped by Sum/Avg/Min/Max/Std. *)

val order_by : ?descending:bool -> string list -> Table.t -> Table.t
(** Stable lexicographic sort on the listed columns. *)

val distinct : Table.t -> Table.t
val union : Table.t -> Table.t -> Table.t
(** Bag union (no duplicate elimination); schemas must be equal. *)

val limit : int -> Table.t -> Table.t
(** Raises [Invalid_argument] on a negative count. *)

(** {2 Shared aggregate accumulators}

    The accumulator implementation behind {!group_by}, exported so the
    other backends ({!Columnar}'s interpreter path, the mapred bridge)
    fold group members through the exact same state machine and stay
    bit-identical to this row oracle: same float accumulation order,
    same [Value.compare] min/max, same finish rules. *)

type acc

val fresh_acc : unit -> acc

val feed_acc : aggregate -> Schema.t -> Table.row -> acc -> unit
(** Fold one row in: the aggregate's source expression is evaluated
    against the row; Null results are skipped. Raises like {!group_by}
    on non-numeric inputs to numeric aggregates. *)

val finish_acc : aggregate -> acc -> Value.t
(** Count/Count_if are Int; Avg of no inputs and Std of fewer than two
    are Null; Min/Max return the stored input value (keeping its input
    type). *)

val agg_type : aggregate -> Value.ty
(** Declared output type: Count/Count_if are Int, the rest Float. *)
