module Array1 = Bigarray.Array1
module Bitset = Column.Bitset

(* A shared physical constant for "never null", so combinators can skip
   the null check entirely when both operands are non-nullable. *)
let no_null : int -> int -> bool = fun _ _ -> false

let or_null a b =
  if a == no_null then b
  else if b == no_null then a
  else fun i r -> a i r || b i r

type node =
  | Nint of { geti : int -> int -> int; inull : int -> int -> bool; iunc : bool }
  | Nfloat of { getf : int -> int -> float; fnull : int -> int -> bool; func : bool }
  | Nbool of { getb : int -> int -> bool; bnull : int -> int -> bool; bunc : bool }
  | Nstr of { gets : int -> int -> string; snull : int -> int -> bool; sunc : bool }

let node_unc = function
  | Nint x -> x.iunc
  | Nfloat x -> x.func
  | Nbool x -> x.bunc
  | Nstr x -> x.sunc

let node_null = function
  | Nint x -> x.inull
  | Nfloat x -> x.fnull
  | Nbool x -> x.bnull
  | Nstr x -> x.snull

let node_value n i r =
  match n with
  | Nint x -> if x.inull i r then Value.Null else Value.Int (x.geti i r)
  | Nfloat x -> if x.fnull i r then Value.Null else Value.Float (x.getf i r)
  | Nbool x -> if x.bnull i r then Value.Null else Value.Bool (x.getb i r)
  | Nstr x -> if x.snull i r then Value.Null else Value.String (x.gets i r)

(* --- environments -------------------------------------------------- *)

type env = { nodes : (string, node option) Hashtbl.t }

let null_getter ~vdet nulls =
  match nulls with
  | None -> no_null
  | Some m -> if vdet then fun i _ -> Bitset.get m i 0 else fun i r -> Bitset.get m i r

let node_of_column ~reps col =
  match Column.view col with
  | Column.Vfloat { vdet; data; nulls } ->
    let getf =
      if vdet then fun i _ -> Array1.unsafe_get data i
      else fun i r -> Array1.unsafe_get data ((i * reps) + r)
    in
    Some (Nfloat { getf; fnull = null_getter ~vdet nulls; func = not vdet })
  | Column.Vint { vdet; data; nulls } ->
    let geti =
      if vdet then fun i _ -> Array.unsafe_get data i
      else fun i r -> Array.unsafe_get data ((i * reps) + r)
    in
    Some (Nint { geti; inull = null_getter ~vdet nulls; iunc = not vdet })
  | Column.Vbool { vdet; data; nulls } ->
    let getb =
      if vdet then fun i _ -> Array.unsafe_get data i <> 0
      else fun i r -> Array.unsafe_get data ((i * reps) + r) <> 0
    in
    Some (Nbool { getb; bnull = null_getter ~vdet nulls; bunc = not vdet })
  | Column.Vstring { vdet; codes; dict } ->
    let code =
      if vdet then fun i _ -> Array.unsafe_get codes i
      else fun i r -> Array.unsafe_get codes ((i * reps) + r)
    in
    (* The value closure is only consulted when non-null, but return a
       dummy rather than trap if a caller strays. *)
    let gets i r =
      let c = code i r in
      if c < 0 then "" else Array.unsafe_get dict c
    in
    Some (Nstr { gets; snull = (fun i r -> code i r < 0); sunc = not vdet })
  | Column.Vvalues _ -> None

let env_of_columns schema ~reps columns =
  let nodes = Hashtbl.create (Array.length columns * 2) in
  List.iteri
    (fun j name -> Hashtbl.replace nodes name (node_of_column ~reps columns.(j)))
    (Schema.column_names schema);
  { nodes }

let env_extend env defs =
  let nodes = Hashtbl.copy env.nodes in
  List.iter (fun (name, node) -> Hashtbl.replace nodes name (Some node)) defs;
  { nodes }

(* --- compilation --------------------------------------------------- *)

let as_float_get = function
  | Nint x ->
    let g = x.geti in
    fun i r -> float_of_int (g i r)
  | Nfloat x -> x.getf
  | Nbool _ | Nstr _ -> assert false

(* Null-guarded boolean: comparisons yield false (not Null) when either
   side is Null, per [Expr.compare_values]. *)
let guard2 n1 n2 f =
  if n1 == no_null && n2 == no_null then f
  else fun i r -> if n1 i r || n2 i r then false else f i r

(* [eval_bool] semantics: Null counts as false. *)
let effective_bool x =
  match x with
  | Nbool b -> if b.bnull == no_null then b.getb else fun i r -> (not (b.bnull i r)) && b.getb i r
  | Nint _ | Nfloat _ | Nstr _ -> assert false

type cmpop = Ceq | Cne | Clt | Cle | Cgt | Cge

let int_cmp = function
  | Ceq -> fun (x : int) y -> x = y
  | Cne -> fun (x : int) y -> x <> y
  | Clt -> fun (x : int) y -> x < y
  | Cle -> fun (x : int) y -> x <= y
  | Cgt -> fun (x : int) y -> x > y
  | Cge -> fun (x : int) y -> x >= y

(* Total-order float comparison — [Value.compare] goes through
   [Float.compare], so NaN sorts below everything and [-0. < 0.]; the
   compiled path must agree bit for bit, hence no IEEE [<]. *)
let float_cmp = function
  | Ceq -> fun x y -> Float.compare x y = 0
  | Cne -> fun x y -> Float.compare x y <> 0
  | Clt -> fun x y -> Float.compare x y < 0
  | Cle -> fun x y -> Float.compare x y <= 0
  | Cgt -> fun x y -> Float.compare x y > 0
  | Cge -> fun x y -> Float.compare x y >= 0

let str_cmp = function
  | Ceq -> fun x y -> String.compare x y = 0
  | Cne -> fun x y -> String.compare x y <> 0
  | Clt -> fun x y -> String.compare x y < 0
  | Cle -> fun x y -> String.compare x y <= 0
  | Cgt -> fun x y -> String.compare x y > 0
  | Cge -> fun x y -> String.compare x y >= 0

let bool_cmp = function
  | Ceq -> fun (x : bool) y -> x = y
  | Cne -> fun (x : bool) y -> x <> y
  | Clt -> fun x y -> Bool.compare x y < 0
  | Cle -> fun x y -> Bool.compare x y <= 0
  | Cgt -> fun x y -> Bool.compare x y > 0
  | Cge -> fun x y -> Bool.compare x y >= 0

let rec compile env expr =
  match (expr : Expr.t) with
  | Expr.Col name -> Option.join (Hashtbl.find_opt env.nodes name)
  | Expr.Lit (Value.Int i) ->
    Some (Nint { geti = (fun _ _ -> i); inull = no_null; iunc = false })
  | Expr.Lit (Value.Float f) ->
    Some (Nfloat { getf = (fun _ _ -> f); fnull = no_null; func = false })
  | Expr.Lit (Value.Bool b) ->
    Some (Nbool { getb = (fun _ _ -> b); bnull = no_null; bunc = false })
  | Expr.Lit (Value.String s) ->
    Some (Nstr { gets = (fun _ _ -> s); snull = no_null; sunc = false })
  | Expr.Lit Value.Null -> None
  | Expr.Add (a, b) -> arith env ( + ) ( +. ) a b
  | Expr.Sub (a, b) -> arith env ( - ) ( -. ) a b
  | Expr.Mul (a, b) -> arith env ( * ) ( *. ) a b
  | Expr.Div (a, b) -> begin
    match (compile env a, compile env b) with
    | Some ((Nint _ | Nfloat _) as x), Some ((Nint _ | Nfloat _) as y) ->
      let fx = as_float_get x and fy = as_float_get y in
      Some
        (Nfloat
           {
             getf = (fun i r -> fx i r /. fy i r);
             fnull = or_null (node_null x) (node_null y);
             func = node_unc x || node_unc y;
           })
    | _ -> None
  end
  | Expr.Neg a -> begin
    match compile env a with
    | Some (Nint x) ->
      let g = x.geti in
      Some (Nint { x with geti = (fun i r -> 0 - g i r) })
    | Some (Nfloat x) ->
      let g = x.getf in
      Some (Nfloat { x with getf = (fun i r -> -.(g i r)) })
    | _ -> None
  end
  | Expr.Eq (a, b) -> cmp env Ceq a b
  | Expr.Ne (a, b) -> cmp env Cne a b
  | Expr.Lt (a, b) -> cmp env Clt a b
  | Expr.Le (a, b) -> cmp env Cle a b
  | Expr.Gt (a, b) -> cmp env Cgt a b
  | Expr.Ge (a, b) -> cmp env Cge a b
  | Expr.And (a, b) -> logic env (fun ea eb i r -> ea i r && eb i r) a b
  | Expr.Or (a, b) -> logic env (fun ea eb i r -> ea i r || eb i r) a b
  | Expr.Not a -> begin
    match compile env a with
    | Some (Nbool _ as x) ->
      let e = effective_bool x in
      Some
        (Nbool { getb = (fun i r -> not (e i r)); bnull = no_null; bunc = node_unc x })
    | _ -> None
  end
  | Expr.Is_null a -> begin
    match compile env a with
    | Some x ->
      Some (Nbool { getb = node_null x; bnull = no_null; bunc = node_unc x })
    | None -> None
  end
  | Expr.If (c, t, e) -> begin
    match (compile env c, compile env t, compile env e) with
    | Some (Nbool _ as cn), Some tn, Some en ->
      let cond = effective_bool cn in
      let unc = node_unc cn || node_unc tn || node_unc en in
      let branch_null nt ne =
        if nt == no_null && ne == no_null then no_null
        else fun i r -> if cond i r then nt i r else ne i r
      in
      begin
        match (tn, en) with
        | Nint t', Nint e' ->
          let gt = t'.geti and ge = e'.geti in
          Some
            (Nint
               {
                 geti = (fun i r -> if cond i r then gt i r else ge i r);
                 inull = branch_null t'.inull e'.inull;
                 iunc = unc;
               })
        | Nfloat t', Nfloat e' ->
          let gt = t'.getf and ge = e'.getf in
          Some
            (Nfloat
               {
                 getf = (fun i r -> if cond i r then gt i r else ge i r);
                 fnull = branch_null t'.fnull e'.fnull;
                 func = unc;
               })
        | Nbool t', Nbool e' ->
          let gt = t'.getb and ge = e'.getb in
          Some
            (Nbool
               {
                 getb = (fun i r -> if cond i r then gt i r else ge i r);
                 bnull = branch_null t'.bnull e'.bnull;
                 bunc = unc;
               })
        | Nstr t', Nstr e' ->
          let gt = t'.gets and ge = e'.gets in
          Some
            (Nstr
               {
                 gets = (fun i r -> if cond i r then gt i r else ge i r);
                 snull = branch_null t'.snull e'.snull;
                 sunc = unc;
               })
        | _ -> None (* mixed-kind branches: rep-dependent result type *)
      end
    | _ -> None
  end

and arith env fi ff a b =
  match (compile env a, compile env b) with
  | Some (Nint x), Some (Nint y) ->
    let gx = x.geti and gy = y.geti in
    Some
      (Nint
         {
           geti = (fun i r -> fi (gx i r) (gy i r));
           inull = or_null x.inull y.inull;
           iunc = x.iunc || y.iunc;
         })
  | Some ((Nint _ | Nfloat _) as x), Some ((Nint _ | Nfloat _) as y) ->
    let fx = as_float_get x and fy = as_float_get y in
    Some
      (Nfloat
         {
           getf = (fun i r -> ff (fx i r) (fy i r));
           fnull = or_null (node_null x) (node_null y);
           func = node_unc x || node_unc y;
         })
  | _ -> None

and cmp env cop a b =
  match (compile env a, compile env b) with
  | Some (Nint x), Some (Nint y) ->
    let op = int_cmp cop in
    let gx = x.geti and gy = y.geti in
    Some
      (Nbool
         {
           getb = guard2 x.inull y.inull (fun i r -> op (gx i r) (gy i r));
           bnull = no_null;
           bunc = x.iunc || y.iunc;
         })
  | Some ((Nint _ | Nfloat _) as x), Some ((Nint _ | Nfloat _) as y) ->
    let op = float_cmp cop in
    let fx = as_float_get x and fy = as_float_get y in
    Some
      (Nbool
         {
           getb = guard2 (node_null x) (node_null y) (fun i r -> op (fx i r) (fy i r));
           bnull = no_null;
           bunc = node_unc x || node_unc y;
         })
  | Some (Nstr x), Some (Nstr y) ->
    let op = str_cmp cop in
    let gx = x.gets and gy = y.gets in
    Some
      (Nbool
         {
           getb = guard2 x.snull y.snull (fun i r -> op (gx i r) (gy i r));
           bnull = no_null;
           bunc = x.sunc || y.sunc;
         })
  | Some (Nbool x), Some (Nbool y) ->
    let op = bool_cmp cop in
    let gx = x.getb and gy = y.getb in
    Some
      (Nbool
         {
           getb = guard2 x.bnull y.bnull (fun i r -> op (gx i r) (gy i r));
           bnull = no_null;
           bunc = x.bunc || y.bunc;
         })
  | _ -> None (* cross-kind comparison: rank order, left to the interpreter *)

and logic env combine a b =
  match (compile env a, compile env b) with
  | Some (Nbool _ as x), Some (Nbool _ as y) ->
    let ea = effective_bool x and eb = effective_bool y in
    Some
      (Nbool
         { getb = combine ea eb; bnull = no_null; bunc = node_unc x || node_unc y })
  | _ -> None

(* --- consumers ----------------------------------------------------- *)

let as_pred = function
  | Nbool _ as x -> Some (effective_bool x)
  | Nint _ | Nfloat _ | Nstr _ -> None

type cell = {
  value : int -> int -> float;
  null : int -> int -> bool;
  cell_unc : bool;
}

let as_float_cell = function
  | Nfloat x -> Some { value = x.getf; null = x.fnull; cell_unc = x.func }
  | Nint x ->
    let g = x.geti in
    Some { value = (fun i r -> float_of_int (g i r)); null = x.inull; cell_unc = x.iunc }
  | Nbool x ->
    let g = x.getb in
    Some
      {
        value = (fun i r -> if g i r then 1. else 0.);
        null = x.bnull;
        cell_unc = x.bunc;
      }
  | Nstr _ -> None

(* --- materialization ----------------------------------------------- *)

(* Row-chunked fill: the pool chunks contiguously and each row's slots
   (and null-mask bytes) are disjoint across rows, so the parallel fill
   writes exactly the bytes the sequential one would. [Pool.iter] is the
   no-result fan-out — nothing is allocated to drive the side effects. *)
let fill_rows ?pool rows f = Mde_par.Pool.iter ?pool ~site:"bundle.materialize" rows f

let materialize ?pool ~rows ~reps node =
  let det = not (node_unc node) in
  let nslots = rows * if det then 1 else reps in
  let nulls_of getn =
    if getn == no_null then None
    else Some (Bitset.create ~rows ~reps:(if det then 1 else reps) false)
  in
  let each_slot i f =
    if det then f 0 i else for r = 0 to reps - 1 do f r ((i * reps) + r) done
  in
  let record_null mask i r = Bitset.set mask i (if det then 0 else r) in
  match node with
  | Nfloat x ->
    let data = Array1.create Bigarray.float64 Bigarray.c_layout nslots in
    let nulls = nulls_of x.fnull in
    fill_rows ?pool rows (fun i ->
        each_slot i (fun r s ->
            if x.fnull i r then begin
              Array1.set data s nan;
              record_null (Option.get nulls) i r
            end
            else Array1.set data s (x.getf i r)));
    Column.of_floats ~det ~reps ?nulls data
  | Nint x ->
    let data = Array.make nslots 0 in
    let nulls = nulls_of x.inull in
    fill_rows ?pool rows (fun i ->
        each_slot i (fun r s ->
            if x.inull i r then record_null (Option.get nulls) i r
            else data.(s) <- x.geti i r));
    Column.of_ints ~det ~reps ?nulls data
  | Nbool x ->
    let data = Array.make nslots 0 in
    let nulls = nulls_of x.bnull in
    fill_rows ?pool rows (fun i ->
        each_slot i (fun r s ->
            if x.bnull i r then record_null (Option.get nulls) i r
            else data.(s) <- Bool.to_int (x.getb i r)));
    Column.of_bools ~det ~reps ?nulls data
  | Nstr x ->
    (* Dictionary construction is stateful; fill sequentially. *)
    let codes = Array.make nslots (-1) in
    let table : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let rev = ref [] and next = ref 0 in
    for i = 0 to rows - 1 do
      each_slot i (fun r s ->
          if not (x.snull i r) then begin
            let str = x.gets i r in
            codes.(s) <-
              (match Hashtbl.find_opt table str with
              | Some c -> c
              | None ->
                let c = !next in
                incr next;
                Hashtbl.add table str c;
                rev := str :: !rev;
                c)
          end)
    done;
    Column.of_codes ~det ~reps ~dict:(Array.of_list (List.rev !rev)) codes
