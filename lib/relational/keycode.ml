(* Packed key codes. See keycode.mli for the semantic contract; the
   short version is that every encoding below must be injective w.r.t.
   Value.Key equality over the cells it covers, or [of_columns] must
   refuse and send the caller back to the boxed Value.Tbl path. *)

module Bitset = Column.Bitset

(* --- component classification ------------------------------------- *)

(* One component of the composite key, classified across all sides.
   Packed components carry the field width in bits; a code of 0 always
   means Null, so a packed key of all-zero fields is the all-null key
   and null detection is "any field extracts to 0". *)
type comp =
  | Craw  (* sole component, int storage, no nulls on any side: the raw
             value is already an injective one-word key (zero-copy) *)
  | Cint of { base : int; width : int }  (* code = v - base + 1 *)
  | Cbool  (* width 2: null 0, false 1, true 2 *)
  | Cstr of { remaps : int array array; width : int }
      (* remaps.(side).(column_code) = shared dictionary code;
         packed code = shared + 1 *)
  | Cnum  (* bytes mode: canonical float image (ints validated exact) *)
  | Cwide  (* bytes mode: exact int payload, range too wide to pack *)

type mode = Mraw | Mpacked | Mbytes

type t = { sides : Column.t array array; comps : comp array; mode : mode }

let comp_width = function
  | Cint { width; _ } -> width
  | Cbool -> 2
  | Cstr { width; _ } -> width
  | Craw | Cnum | Cwide -> 0

(* Smallest w >= 1 with 2^w >= count. Callers guarantee count < 2^62. *)
let bits_for count =
  let w = ref 1 in
  while 1 lsl !w < count do incr w done;
  !w

(* Range of an int data array, scanned over every slot: null slots hold
   the fill default 0, which can only widen the range — codes stay
   injective because base <= every non-null value. *)
let int_range datas =
  let mn = ref 0 and mx = ref 0 and first = ref true in
  List.iter
    (fun (data : int array) ->
      Array.iter
        (fun v ->
          if !first then begin
            mn := v;
            mx := v;
            first := false
          end
          else begin
            if v < !mn then mn := v;
            if v > !mx then mx := v
          end)
        data)
    datas;
  (!mn, !mx)

let exact_float_limit = 1 lsl 53

(* Every int whose magnitude is at most 2^53 has an exact float image,
   so Int i = Float f decisions survive the encoding. Beyond that,
   float_of_int is not injective and we refuse the component. *)
let ints_exact datas =
  List.for_all
    (fun (data : int array) ->
      Array.for_all (fun v -> v >= -exact_float_limit && v <= exact_float_limit) data)
    datas

(* [sole] is true when this is the key's only component: only then may
   an all-int no-null component stay raw (zero-copy Mraw mode) — in a
   composite key every component needs a bounded packed width. *)
let classify_comp ~sole n_sides views =
  let all p = Array.for_all p views in
  let int_datas () =
    Array.to_list views
    |> List.filter_map (function Column.Vint { data; _ } -> Some data | _ -> None)
  in
  if all (function Column.Vint _ -> true | _ -> false) then begin
    let no_nulls = all (function Column.Vint { nulls = None; _ } -> true | _ -> false) in
    if sole && no_nulls && n_sides = 1 then Some Craw
    else begin
      let mn, mx = int_range (int_datas ()) in
      let span = mx - mn in
      (* span < 0 is overflow of the subtraction itself: definitely wide *)
      if span >= 0 && span <= (1 lsl 61) - 2 then
        Some (Cint { base = mn; width = bits_for (span + 2) })
      else Some Cwide
    end
  end
  else if all (function Column.Vbool _ -> true | _ -> false) then Some Cbool
  else if all (function Column.Vstring _ -> true | _ -> false) then begin
    let shared : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let next = ref 0 in
    let remaps =
      Array.map
        (function
          | Column.Vstring { dict; _ } ->
            Array.map
              (fun s ->
                match Hashtbl.find_opt shared s with
                | Some c -> c
                | None ->
                  let c = !next in
                  incr next;
                  Hashtbl.add shared s c;
                  c)
              dict
          | _ -> assert false)
        views
    in
    Some (Cstr { remaps; width = bits_for (!next + 1) })
  end
  else if
    all (function Column.Vint _ | Column.Vfloat _ -> true | _ -> false)
    && ints_exact (int_datas ())
  then Some Cnum
  else None

let of_columns sides =
  match sides with
  | [] -> None
  | first :: rest ->
    let k = Array.length first in
    if k = 0 || List.exists (fun s -> Array.length s <> k) rest then None
    else begin
      let sides = Array.of_list sides in
      if Array.exists (fun cols -> Array.exists (fun c -> not (Column.det c)) cols) sides
      then None
      else begin
        let comps =
          Array.init k (fun c ->
              classify_comp ~sole:(k = 1) (Array.length sides)
                (Array.map (fun cols -> Column.view cols.(c)) sides))
        in
        if Array.exists Option.is_none comps then None
        else begin
          let comps = Array.map Option.get comps in
          let has_bytes =
            Array.exists (function Cnum | Cwide -> true | _ -> false) comps
          in
          let total = Array.fold_left (fun a c -> a + comp_width c) 0 comps in
          let mode =
            if k = 1 && comps.(0) = Craw then Mraw
            else if (not has_bytes) && total <= 63 then Mpacked
            else Mbytes
          in
          Some { sides; comps; mode }
        end
      end
    end

(* --- encoding ------------------------------------------------------ *)

type keys = Kint of int array | Kbytes of bytes array

type coded = { keys : keys; null_rows : bool array option }

let null_reader nulls =
  match nulls with
  | None -> fun _ -> false
  | Some m -> fun i -> Bitset.get m i 0

(* Packed field code for component [c] of [side]: 0 iff the cell is
   Null, otherwise >= 1 and injective over the component's values. *)
let packed_code comp side_idx view =
  match (comp, view) with
  | Cint { base; _ }, Column.Vint { data; nulls; _ } ->
    let is_null = null_reader nulls in
    fun i -> if is_null i then 0 else data.(i) - base + 1
  | Cbool, Column.Vbool { data; nulls; _ } ->
    let is_null = null_reader nulls in
    fun i -> if is_null i then 0 else data.(i) + 1
  | Cstr { remaps; _ }, Column.Vstring { codes; _ } ->
    let remap = remaps.(side_idx) in
    fun i ->
      let c = codes.(i) in
      if c < 0 then 0 else remap.(c) + 1
  | _ -> invalid_arg "Keycode: component/storage mismatch"

(* Can this component be Null on this side? Used only to decide whether
   the null_rows array is worth allocating; false negatives would be a
   bug, false positives just cost one bool array. *)
let comp_nullable view =
  match view with
  | Column.Vint { nulls; _ } | Column.Vbool { nulls; _ } | Column.Vfloat { nulls; _ } ->
    nulls <> None
  | Column.Vstring { codes; _ } -> Array.exists (fun c -> c < 0) codes
  | Column.Vvalues _ -> true

let canonical_nan_bits = 0x7FF8_0000_0000_0000L

(* Canonical image: injective over Float Value.Key classes — all NaNs
   collapse, -0.0 collapses onto +0.0, everything else is bits. *)
let num_image f =
  if f <> f then canonical_nan_bits
  else if f = 0. then 0L
  else Int64.bits_of_float f

(* Bytes component writer: 9 bytes at [off] (1 tag + 8 payload), returns
   true iff the cell was Null. Tags: 0 null, 1 numeric image, 2 bool,
   3 shared string code, 4 exact int. *)
let bytes_writer comp side_idx view =
  let write_null b off =
    Bytes.set b off '\000';
    Bytes.set_int64_le b (off + 1) 0L;
    true
  in
  let write b off tag payload =
    Bytes.set b off tag;
    Bytes.set_int64_le b (off + 1) payload;
    false
  in
  match (comp, view) with
  | Cnum, Column.Vfloat { data; nulls; _ } ->
    let is_null = null_reader nulls in
    fun b off i ->
      if is_null i then write_null b off
      else write b off '\001' (num_image (Bigarray.Array1.get data i))
  | Cnum, Column.Vint { data; nulls; _ } ->
    let is_null = null_reader nulls in
    fun b off i ->
      if is_null i then write_null b off
      else write b off '\001' (num_image (float_of_int data.(i)))
  | (Cwide | Cint _ | Craw), Column.Vint { data; nulls; _ } ->
    let is_null = null_reader nulls in
    fun b off i ->
      if is_null i then write_null b off
      else write b off '\004' (Int64.of_int data.(i))
  | Cbool, Column.Vbool { data; nulls; _ } ->
    let is_null = null_reader nulls in
    fun b off i ->
      if is_null i then write_null b off else write b off '\002' (Int64.of_int data.(i))
  | Cstr { remaps; _ }, Column.Vstring { codes; _ } ->
    let remap = remaps.(side_idx) in
    fun b off i ->
      let c = codes.(i) in
      if c < 0 then write_null b off else write b off '\003' (Int64.of_int remap.(c))
  | _ -> invalid_arg "Keycode: component/storage mismatch"

let encode ?pool t ~side =
  let cols = t.sides.(side) in
  let k = Array.length cols in
  let n = Column.rows cols.(0) in
  let views = Array.map Column.view cols in
  match t.mode with
  | Mraw -> (
    match views.(0) with
    | Column.Vint { data; _ } -> { keys = Kint data; null_rows = None }
    | _ -> invalid_arg "Keycode: component/storage mismatch")
  | Mpacked ->
    let codes = Array.init k (fun c -> packed_code t.comps.(c) side views.(c)) in
    let widths = Array.map comp_width t.comps in
    let nullable = Array.exists comp_nullable views in
    let out = Array.make n 0 in
    let nulls = if nullable then Some (Array.make n false) else None in
    let fill =
      match nulls with
      | None ->
        fun i ->
          let key = ref 0 in
          for c = 0 to k - 1 do
            key := (!key lsl widths.(c)) lor codes.(c) i
          done;
          out.(i) <- !key
      | Some flags ->
        fun i ->
          let key = ref 0 in
          let anynull = ref false in
          for c = 0 to k - 1 do
            let code = codes.(c) i in
            if code = 0 then anynull := true;
            key := (!key lsl widths.(c)) lor code
          done;
          out.(i) <- !key;
          if !anynull then flags.(i) <- true
    in
    Mde_par.Pool.iter ?pool ~site:"relational.keycode" n fill;
    { keys = Kint out; null_rows = nulls }
  | Mbytes ->
    let writers = Array.init k (fun c -> bytes_writer t.comps.(c) side views.(c)) in
    let len = 9 * k in
    let out = Array.make n Bytes.empty in
    let nullable = Array.exists comp_nullable views in
    let nulls = if nullable then Some (Array.make n false) else None in
    let fill i =
      let b = Bytes.create len in
      let anynull = ref false in
      for c = 0 to k - 1 do
        if writers.(c) b (9 * c) i then anynull := true
      done;
      out.(i) <- b;
      match nulls with
      | Some flags -> if !anynull then flags.(i) <- true
      | None -> ()
    in
    Mde_par.Pool.iter ?pool ~site:"relational.keycode" n fill;
    { keys = Kbytes out; null_rows = nulls }

(* --- key tables ---------------------------------------------------- *)

(* Open addressing over immediate int keys: linear probing with a
   multiplicative (Fibonacci) hash. The 62-bit odd constant keeps the
   literal inside OCaml's boxed-free int range; the xor-fold pulls the
   high-entropy bits down into the slot index. *)
let int_hash k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land max_int

type int_tbl = {
  mutable mask : int;  (* capacity - 1, capacity a power of two *)
  mutable slot_keys : int array;
  mutable slot_ids : int array;  (* -1 = empty *)
  mutable count : int;
  build_keys : int array;
}

type bytes_tbl = {
  bt : (bytes, int) Hashtbl.t;
  bbuild : bytes array;
  mutable bcount : int;
}

type tbl = Tint of int_tbl | Tbytes of bytes_tbl

let pow2_at_least n =
  let c = ref 16 in
  while !c < n do c := !c * 2 done;
  !c

let tbl_create ~hint keys =
  match keys with
  | Kint build_keys ->
    let cap = pow2_at_least (max 16 (hint * 2)) in
    Tint
      {
        mask = cap - 1;
        slot_keys = Array.make cap 0;
        slot_ids = Array.make cap (-1);
        count = 0;
        build_keys;
      }
  | Kbytes bbuild -> Tbytes { bt = Hashtbl.create (max 16 hint); bbuild; bcount = 0 }

let int_grow t =
  let cap = (t.mask + 1) * 2 in
  let keys = Array.make cap 0 and ids = Array.make cap (-1) in
  let mask = cap - 1 in
  let old_keys = t.slot_keys and old_ids = t.slot_ids in
  Array.iteri
    (fun s id ->
      if id >= 0 then begin
        let k = old_keys.(s) in
        let j = ref (int_hash k land mask) in
        while ids.(!j) >= 0 do
          j := (!j + 1) land mask
        done;
        keys.(!j) <- k;
        ids.(!j) <- id
      end)
    old_ids;
  t.mask <- mask;
  t.slot_keys <- keys;
  t.slot_ids <- ids

let int_add t k =
  let mask = t.mask in
  let j = ref (int_hash k land mask) in
  let res = ref (-1) in
  while !res < 0 do
    let id = t.slot_ids.(!j) in
    if id < 0 then begin
      let fresh = t.count in
      t.slot_ids.(!j) <- fresh;
      t.slot_keys.(!j) <- k;
      t.count <- fresh + 1;
      if t.count * 4 > (mask + 1) * 3 then int_grow t;
      res := fresh
    end
    else if t.slot_keys.(!j) = k then res := id
    else j := (!j + 1) land mask
  done;
  !res

let int_find t k =
  let mask = t.mask in
  let j = ref (int_hash k land mask) in
  let res = ref min_int in
  while !res = min_int do
    let id = t.slot_ids.(!j) in
    if id < 0 then res := -1
    else if t.slot_keys.(!j) = k then res := id
    else j := (!j + 1) land mask
  done;
  !res

let tbl_add t i =
  match t with
  | Tint it -> int_add it it.build_keys.(i)
  | Tbytes bt -> (
    let key = bt.bbuild.(i) in
    match Hashtbl.find_opt bt.bt key with
    | Some id -> id
    | None ->
      let fresh = bt.bcount in
      Hashtbl.add bt.bt key fresh;
      bt.bcount <- fresh + 1;
      fresh)

let tbl_find t probe i =
  match (t, probe) with
  | Tint it, Kint keys -> int_find it keys.(i)
  | Tbytes bt, Kbytes keys -> (
    match Hashtbl.find_opt bt.bt keys.(i) with Some id -> id | None -> -1)
  | _ -> invalid_arg "Keycode.tbl_find: probe keys from a different encoder"

let tbl_count = function Tint it -> it.count | Tbytes bt -> bt.bcount

(* --- normalized sort keys ------------------------------------------ *)

(* Order-preserving per-column images: Null -> 0 below everything,
   ints offset by the scanned minimum, bools 0/1 after the null slot,
   strings by dictionary *rank* under String.compare (equal strings on
   duplicate dictionary entries must get equal ranks, or the index
   tiebreak would be pre-empted by dictionary code order). *)
let sort_image view =
  match view with
  | Column.Vint { data; nulls; vdet = true } ->
    let mn, mx = int_range [ data ] in
    let span = mx - mn in
    if span < 0 || span > (1 lsl 61) - 2 then None
    else
      let is_null = null_reader nulls in
      Some (bits_for (span + 2), fun i -> if is_null i then 0 else data.(i) - mn + 1)
  | Column.Vbool { data; nulls; vdet = true } ->
    let is_null = null_reader nulls in
    Some (2, fun i -> if is_null i then 0 else data.(i) + 1)
  | Column.Vstring { codes; dict; vdet = true } ->
    let n_dict = Array.length dict in
    let order = Array.init n_dict Fun.id in
    Array.sort (fun a b -> String.compare dict.(a) dict.(b)) order;
    let ranks = Array.make n_dict 0 in
    let rank = ref (-1) in
    Array.iteri
      (fun pos code ->
        if pos = 0 || not (String.equal dict.(code) dict.(order.(pos - 1))) then
          incr rank;
        ranks.(code) <- !rank)
      order;
    Some
      ( bits_for (!rank + 2 + Bool.to_int (n_dict = 0)),
        fun i ->
          let c = codes.(i) in
          if c < 0 then 0 else ranks.(c) + 1 )
  | _ -> None

let sort_perm ?(descending = false) cols ~n_rows =
  if n_rows <= 1 then Some (Array.init n_rows Fun.id)
  else begin
    let images = Array.map (fun c -> sort_image (Column.view c)) cols in
    if Array.exists Option.is_none images then None
    else begin
      let images = Array.map Option.get images in
      let k = Array.length images in
      let total = Array.fold_left (fun a (w, _) -> a + w) 0 images in
      if total > 62 then None
      else begin
        let img i =
          let key = ref 0 in
          for c = 0 to k - 1 do
            let w, f = images.(c) in
            key := (!key lsl w) lor f i
          done;
          !key
        in
        let idx_bits = bits_for n_rows in
        if total + idx_bits <= 62 then begin
          (* Fully unboxed: key and tiebreak index share one word, so a
             flat monomorphic int sort gives the stable order. Descending
             complements the key image, never the index. *)
          let wmask = (1 lsl total) - 1 in
          let imask = (1 lsl idx_bits) - 1 in
          let arr =
            Array.init n_rows (fun i ->
                let v = img i in
                let v = if descending then v lxor wmask else v in
                (v lsl idx_bits) lor i)
          in
          Array.sort (fun (a : int) b -> Int.compare a b) arr;
          Some (Array.map (fun packed -> packed land imask) arr)
        end
        else begin
          let imgs = Array.init n_rows img in
          let perm = Array.init n_rows Fun.id in
          Array.sort
            (fun a b ->
              let c = Int.compare imgs.(a) imgs.(b) in
              let c = if descending then -c else c in
              if c <> 0 then c else Int.compare a b)
            perm;
          Some perm
        end
      end
    end
  end
