type t = Null | Int of int | Float of float | String of string | Bool of bool
type ty = Tint | Tfloat | Tstring | Tbool

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | String _ -> Some Tstring
  | Bool _ -> Some Tbool

let type_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

let rank = function Null -> 0 | Bool _ -> 1 | Int _ | Float _ -> 2 | String _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0x6e756c6c
  | Bool false -> 0x0b001
  | Bool true -> 0x0b101
  (* Int and Float hash through the same float image because [compare]
     (hence [equal]) orders them numerically across types: Int 1 and
     Float 1. are equal keys and must collide. *)
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f ->
    (* Every NaN payload is [equal] under [Float.compare], so all NaNs
       must share one hash. *)
    if Float.is_nan f then 0x7ff8 else Hashtbl.hash f
  | String s -> Hashtbl.hash s

let is_null = function Null -> true | Bool _ | Int _ | Float _ | String _ -> false

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Bool b -> if b then 1. else 0.
  | Null -> invalid_arg "Value.to_float: Null"
  | String _ -> invalid_arg "Value.to_float: String"

let to_int = function
  | Int i -> i
  | Bool b -> if b then 1 else 0
  | Null | Float _ | String _ -> invalid_arg "Value.to_int"

let to_bool = function
  | Bool b -> b
  | Null | Int _ | Float _ | String _ -> invalid_arg "Value.to_bool"

let to_string_value = function
  | String s -> s
  | Null | Int _ | Float _ | Bool _ -> invalid_arg "Value.to_string_value"

let to_display = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | String s -> s
  | Bool b -> if b then "true" else "false"

let pp ppf v = Format.pp_print_string ppf (to_display v)

module Key = struct
  type nonrec t = t list

  let equal = List.equal equal
  let hash k = List.fold_left (fun acc v -> (acc * 31) + hash v) 17 k
end

module Tbl = Hashtbl.Make (Key)
