(** Scalar expressions over table rows: the WHERE / computed-column
    language of the engine. SQL three-valued logic is approximated by
    letting Null propagate through arithmetic and comparisons evaluate to
    false when either side is Null (sufficient for the workloads here). *)

type t =
  | Col of string
  | Lit of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Eq of t * t
  | Ne of t * t
  | Lt of t * t
  | Le of t * t
  | Gt of t * t
  | Ge of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | If of t * t * t  (** [If (cond, then_, else_)] *)

val col : string -> t
val int : int -> t
val float : float -> t
val string : string -> t
val bool : bool -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val not_ : t -> t

val eval : Schema.t -> Table.row -> t -> Value.t
(** Raises [Invalid_argument] on type errors (e.g. adding strings) and
    [Not_found] on unknown columns. *)

val eval_bool : Schema.t -> Table.row -> t -> bool
(** Evaluate as a predicate; Null counts as false. *)

val columns_used : t -> string list
(** Distinct column names referenced, in first-use order; the handle the
    optimizer uses to decide whether a predicate commutes past an
    operator. *)

val typeof : (string -> Value.ty option) -> t -> Value.ty option
(** Static result type under a column-type environment: [Some ty] means
    every non-raising evaluation yields a value of type [ty] (or Null,
    which arithmetic propagates). [None] means unknown or
    evaluation-dependent (Null literals, mixed-type [If] branches,
    arithmetic over non-numeric operands). The kernel compiler keys its
    typed code paths off this; anything [None] falls back to {!eval}. *)

val pp : Format.formatter -> t -> unit
