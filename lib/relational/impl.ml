type t = [ `Kernel | `Interpreter ]

let all : t list = [ `Kernel; `Interpreter ]
let to_string = function `Kernel -> "kernel" | `Interpreter -> "interpreter"

let of_string_opt s =
  match String.lowercase_ascii s with
  | "kernel" -> Some `Kernel
  | "interpreter" -> Some `Interpreter
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some impl -> impl
  | None ->
    invalid_arg
      (Printf.sprintf "Impl.of_string: %S (expected \"kernel\" or \"interpreter\")" s)
