(** The engine-implementation selector shared by every columnar
    execution surface.

    [`Kernel] runs compiled column kernels; [`Interpreter] forces the
    row-at-a-time fallback. The two are bit-identical by contract — the
    interpreter is the oracle the kernels are property-tested against —
    so the selector only ever changes cost, never answers. It used to be
    re-declared structurally at each site ({!Columnar}, {!Plan.execute},
    [Mde_mcdb.Bundle], [Mde_simsql.Chain.Rules.plan_rule]); those sites
    now alias this one type, and flag parsing shares {!of_string}
    instead of per-subcommand string matching. *)

type t = [ `Kernel | `Interpreter ]

val all : t list
(** [[`Kernel; `Interpreter]], in default-first order — the sweep order
    benches and CLI doc strings use. *)

val to_string : t -> string
(** ["kernel"] / ["interpreter"] — stable labels used in bench JSON
    fields and metric label values. *)

val of_string : string -> t
(** Inverse of {!to_string} (case-insensitive). Raises
    [Invalid_argument] naming the accepted spellings otherwise. *)

val of_string_opt : string -> t option
