module Rng = Mde_prob.Rng

type statistics = { c1 : float; c2 : float; v1 : float; v2 : float }

let check_alpha alpha =
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg (Printf.sprintf "Result_cache: alpha=%g outside (0, 1]" alpha)

let g { c1; c2; v1; v2 } alpha =
  check_alpha alpha;
  let r = floor (1. /. alpha) in
  ((alpha *. c1) +. c2)
  *. (v1 +. (((2. *. r) -. (alpha *. r *. (r +. 1.))) *. v2))

let g_approx { c1; c2; v1; v2 } alpha =
  check_alpha alpha;
  ((alpha *. c1) +. c2) *. (v1 +. (((1. /. alpha) -. 1.) *. v2))

let alpha_star { c1; c2; v1; v2 } =
  assert (c1 > 0. && c2 > 0. && v1 >= 0. && v2 >= 0.);
  if v2 <= 0. then 0.
  else if v2 >= v1 then 1.
  else begin
    let a = sqrt (c2 /. c1 /. ((v1 /. v2) -. 1.)) in
    Float.min 1. a
  end

let efficiency_gain stats =
  (* alpha* minimizes the smooth approximation; with the exact floor-based
     r_alpha, alpha = 1 can still be (slightly) better near the
     transformer limit, and a planner would then simply not cache — so
     the achievable gain is never below 1. *)
  let best = Float.max 1e-6 (Float.min 1. (alpha_star stats)) in
  g stats 1. /. Float.min (g stats best) (g stats 1.)

let query_fingerprint ~model ~n ~alpha ~seed =
  Printf.sprintf "rc{model=%s;n=%d;alpha=%.17g;seed=%d}" model n alpha seed

type 'a two_stage = {
  model1 : Rng.t -> 'a;
  model2 : Rng.t -> 'a -> float;
}

type estimate = { theta_hat : float; n : int; m : int; alpha : float }

let estimate two_stage rng ~n ~alpha =
  check_alpha alpha;
  assert (n > 0);
  let m = Stdlib.max 1 (Float.to_int (ceil (alpha *. float_of_int n))) in
  let cache = Array.init m (fun _ -> two_stage.model1 rng) in
  let total = ref 0. in
  for i = 0 to n - 1 do
    (* Deterministic cycling gives the stratified sample of M1 outputs. *)
    total := !total +. two_stage.model2 rng cache.(i mod m)
  done;
  { theta_hat = !total /. float_of_int n; n; m; alpha }

let estimate_under_budget two_stage rng ~budget ~alpha ~stats =
  check_alpha alpha;
  let cost n =
    let m = Float.to_int (ceil (alpha *. float_of_int n)) in
    (float_of_int m *. stats.c1) +. (float_of_int n *. stats.c2)
  in
  if cost 1 > budget then
    invalid_arg "Result_cache.estimate_under_budget: budget below one replication";
  (* N(c) = sup{n : C_n <= c}; C_n is nondecreasing, so binary search. *)
  let lo = ref 1 and hi = ref 1 in
  while cost (!hi * 2) <= budget do
    hi := !hi * 2
  done;
  hi := !hi * 2;
  while !lo < !hi - 1 do
    let mid = (!lo + !hi) / 2 in
    if cost mid <= budget then lo := mid else hi := mid
  done;
  estimate two_stage rng ~n:!lo ~alpha

type pilot = {
  statistics : statistics;
  inputs_sampled : int;
  outputs_per_input : int;
}

let pilot ?pool two_stage rng ~inputs ~outputs_per_input =
  assert (inputs >= 2 && outputs_per_input >= 2);
  let k = inputs and r = outputs_per_input in
  (* Each pilot input owns a split stream (its M1 draw and its M2 draws
     run on it in a fixed order), so the y matrix — and hence V1/V2 — is
     bit-identical whether inputs run sequentially or across the pool.
     The measured costs c1/c2 are wall-clock-dependent either way. *)
  let streams = Rng.split_n rng k in
  let sampled =
    Mde_par.Pool.init ?pool ~site:"composite.pilot" k (fun i ->
        let s = streams.(i) in
        let start = Sys.time () in
        let y1 = two_stage.model1 s in
        let t1 = Sys.time () -. start in
        let start = Sys.time () in
        let row = Array.make r 0. in
        for j = 0 to r - 1 do
          row.(j) <- two_stage.model2 s y1
        done;
        let t2 = Sys.time () -. start in
        (row, t1, t2))
  in
  let y = Array.map (fun (row, _, _) -> row) sampled in
  let t1 = ref 0. and t2 = ref 0. in
  Array.iter
    (fun (_, d1, d2) ->
      t1 := !t1 +. d1;
      t2 := !t2 +. d2)
    sampled;
  let kf = float_of_int k and rf = float_of_int r in
  let grand = Array.fold_left (fun acc row -> acc +. Array.fold_left ( +. ) 0. row) 0. y
              /. (kf *. rf)
  in
  let group_means = Array.map (fun row -> Array.fold_left ( +. ) 0. row /. rf) y in
  (* One-way ANOVA: E[MSB] = r·V2 + (V1 − V2); E[MSW] = V1 − V2, where V2
     is the shared-input covariance and V1 the total output variance. *)
  let ssb =
    rf
    *. Array.fold_left (fun acc m -> acc +. ((m -. grand) ** 2.)) 0. group_means
  in
  let msb = ssb /. (kf -. 1.) in
  let ssw = ref 0. in
  for i = 0 to k - 1 do
    for j = 0 to r - 1 do
      ssw := !ssw +. ((y.(i).(j) -. group_means.(i)) ** 2.)
    done
  done;
  let msw = !ssw /. (kf *. (rf -. 1.)) in
  let v2 = Float.max 0. ((msb -. msw) /. rf) in
  let v1 = v2 +. msw in
  {
    statistics =
      {
        c1 = Float.max 1e-9 (!t1 /. kf);
        c2 = Float.max 1e-9 (!t2 /. (kf *. rf));
        v1;
        v2;
      };
    inputs_sampled = k;
    outputs_per_input = r;
  }
