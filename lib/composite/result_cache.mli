(** Result caching for stochastic composite simulations (§2.3, [25]).

    Two models run in series: M₁ produces a random output Y₁; M₂ consumes
    it and produces Y₂. To estimate θ = E[Y₂] with n replications of M₂,
    only m_n = ⌈αn⌉ replications of M₁ are run; their outputs are cached
    and cycled through deterministically. The asymptotic variance of the
    budget-constrained estimator is g(α) = (αc₁ + c₂)(V₁ + [2r_α −
    αr_α(r_α+1)]V₂) with r_α = ⌊1/α⌋, minimized (in the r_α ≈ 1/α
    approximation) at α* = √((c₂/c₁)/(V₁/V₂ − 1)). *)

type statistics = {
  c1 : float;  (** expected cost of one M₁ run (incl. transform/store) *)
  c2 : float;  (** expected cost of one M₂ run *)
  v1 : float;  (** Var[Y₂] *)
  v2 : float;  (** Cov[Y₂, Y₂′] for two M₂ runs sharing an M₁ output *)
}

val g : statistics -> float -> float
(** Exact asymptotic work-variance product g(α), α ∈ (0, 1]. *)

val g_approx : statistics -> float -> float
(** The r_α ≈ 1/α approximation g̃(α). *)

val alpha_star : statistics -> float
(** Minimizer of g̃ truncated into (0, 1]: the optimal replication
    fraction. Degenerate cases follow the paper: V₂ = 0 (M₁ effectively
    deterministic for M₂'s variance) → 0 (run M₁ once, caller truncates
    at 1/n); V₂ = V₁ (M₂ a deterministic transformer) → 1. *)

val efficiency_gain : statistics -> float
(** The factor by which optimal caching beats no caching: g(1) divided by
    min(g(α-star), g(1)) — at least 1, since a planner can always decline
    to cache. *)

val query_fingerprint :
  model:string -> n:int -> alpha:float -> seed:int -> string
(** Canonical description of one RC-estimate request ([model] is the
    caller's name for the two-stage composite, whose closures are not
    otherwise observable). Distinct parameters yield distinct strings
    (α is rendered with full precision), so a serving layer can use the
    result directly as a cache key. *)

(** The two-model composite whose θ = E[Y₂] is being estimated. ['a] is
    the type of M₁'s (cached) output. *)
type 'a two_stage = {
  model1 : Mde_prob.Rng.t -> 'a;
  model2 : Mde_prob.Rng.t -> 'a -> float;
}

type estimate = {
  theta_hat : float;
  n : int;  (** M₂ replications executed *)
  m : int;  (** M₁ replications executed (= ⌈αn⌉) *)
  alpha : float;
}

val estimate : 'a two_stage -> Mde_prob.Rng.t -> n:int -> alpha:float -> estimate
(** The RC estimator: run m = ⌈αn⌉ M₁ replications, cycle their cached
    outputs in fixed order through n M₂ replications (the stratified
    re-use scheme), and average. *)

val estimate_under_budget :
  'a two_stage ->
  Mde_prob.Rng.t ->
  budget:float ->
  alpha:float ->
  stats:statistics ->
  estimate
(** Budget-constrained form: run the largest n with C_n = m_n·c₁ + n·c₂ ≤
    budget (N(c) in the paper), then estimate as above. Raises
    [Invalid_argument] if the budget does not cover a single (M₁, M₂)
    pair. *)

type pilot = {
  statistics : statistics;
  inputs_sampled : int;
  outputs_per_input : int;
}

val pilot :
  ?pool:Mde_par.Pool.t ->
  'a two_stage ->
  Mde_prob.Rng.t ->
  inputs:int ->
  outputs_per_input:int ->
  pilot
(** Pilot runs to estimate the statistics 𝒮 = (c₁, c₂, V₁, V₂), as the
    paper prescribes before choosing α: run [inputs] M₁ replications and
    [outputs_per_input] ≥ 2 M₂ replications on each; c₁/c₂ are measured
    wall-clock averages and V₁/V₂ come from the one-way ANOVA variance
    decomposition (between-input variance = V₂, total = V₁). Negative
    variance-component estimates are clamped to 0.

    Every pilot input draws on its own split stream, so with [?pool] the
    inputs run one-per-domain and the sampled outputs (hence V₁/V₂) are
    bit-identical to the sequential run; the measured costs c₁/c₂ are
    timing observations and carry run-to-run noise regardless. *)
