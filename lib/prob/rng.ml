type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used to seed xoshiro and to derive split streams. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let default_seed = 0x5DEECE66DL

let create ?(seed = 0x139408DCBBF7A44) () =
  of_seed64 (Int64.logxor (Int64.of_int seed) default_seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let u = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 u;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let split_n t n =
  assert (n >= 0);
  Array.init n (fun _ -> split t)

let float t =
  (* 53 high bits, scaled to [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let rec float_pos t =
  let u = float t in
  if u > 0. then u else float_pos t

let float_range t lo hi =
  assert (lo < hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection sampling over the low bits to avoid modulo bias. *)
  if n land (n - 1) = 0 then Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (n - 1)))
  else begin
    let bound = Int64.of_int n in
    let rec draw () =
      let bits = Int64.shift_right_logical (bits64 t) 1 in
      let v = Int64.rem bits bound in
      (* Reject draws in the final, incomplete block of size [bound]:
         block start [bits - v] must leave room for a full block, i.e.
         bits - v + (bound - 1) <= max_int. *)
      if Int64.sub bits v > Int64.add (Int64.sub Int64.max_int bound) 1L then draw ()
      else Int64.to_int v
    in
    draw ()
  end

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p =
  assert (p >= 0. && p <= 1.);
  float t < p

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a
