(** Descriptive statistics over float arrays plus a streaming
    (Welford-style) accumulator for Monte Carlo outputs. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singleton input. *)

val std : float array -> float

val covariance : float array -> float array -> float
(** Unbiased sample covariance; arrays must have equal length >= 2. *)

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when either input is constant. *)

val min_max : float array -> float * float

val quantile : float array -> float -> float
(** [quantile xs p] for p in [0,1]: linear-interpolation (type-7) sample
    quantile. Sorts a copy of the input. *)

val quantiles : float array -> float array -> float array
(** Several quantiles with a single sort. *)

val quantile_sorted : float array -> float -> float
(** {!quantile} on input the caller has already sorted ascending (and
    sanitized — NaNs must be gone). The building block consumers use to
    avoid one sort per quantile on shared samples. *)

val median : float array -> float

val autocovariance : float array -> int -> float
(** [autocovariance xs k] at lag k (biased, n denominator). *)

val autocorrelation : float array -> int -> float

val mean_confidence_interval : float array -> float -> float * float
(** [mean_confidence_interval xs level] is a normal-approximation CI for
    the mean, e.g. level = 0.95. Requires length >= 2. *)

type summary = {
  n : int;
  mean : float;
  variance : float;
  min : float;
  max : float;
  q05 : float;
  q25 : float;
  median : float;
  q75 : float;
  q95 : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit

(** Streaming accumulator: numerically stable running mean/variance/extrema,
    O(1) memory, suitable for millions of Monte Carlo outputs. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Unbiased; 0 until two observations arrive. *)

  val std : t -> float
  val min : t -> float
  val max : t -> float
  val merge : t -> t -> t
  (** Combine two accumulators as if their streams were concatenated. *)
end

val bootstrap_ci :
  rng:Rng.t ->
  statistic:(float array -> float) ->
  ?replicates:int ->
  float array ->
  float ->
  float * float
(** [bootstrap_ci ~rng ~statistic xs level]: percentile bootstrap
    confidence interval for an arbitrary statistic (default 1000
    resamples) — the distribution-free companion to the normal-theory
    {!mean_confidence_interval}, usable for medians, quantiles, ratios. *)

val root_mean_square_error : float array -> float array -> float
(** RMSE between two equal-length vectors. *)
