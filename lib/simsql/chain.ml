open Mde_relational
module Rng = Mde_prob.Rng

module String_map = Map.Make (String)

type state = Table.t String_map.t

let state_of_tables tables =
  List.fold_left (fun acc (name, t) -> String_map.add name t acc) String_map.empty tables

let table state name =
  match String_map.find_opt name state with
  | Some t -> t
  | None -> raise Not_found

let table_opt state name = String_map.find_opt name state
let table_names state = List.map fst (String_map.bindings state)
let with_table state name t = String_map.add name t state

type t = {
  initial : Rng.t -> state;
  transition : Rng.t -> state -> state;
}

let simulate t rng ~steps =
  (* Not an assert: validation must survive [-noassert] builds. *)
  if steps < 0 then invalid_arg "Chain.simulate: steps must be non-negative";
  let states = Array.make (steps + 1) String_map.empty in
  states.(0) <- t.initial rng;
  for i = 1 to steps do
    states.(i) <- t.transition rng states.(i - 1)
  done;
  states

let simulate_query t rng ~steps ~query =
  Array.map query (simulate t rng ~steps)

let monte_carlo ?pool t rng ~steps ~reps ~query =
  if reps <= 0 then invalid_arg "Chain.monte_carlo: reps must be positive";
  (* One pre-split stream per replication: the pooled fan-out consumes
     exactly the stream the sequential loop would, so results are
     bit-identical with or without a pool. *)
  let streams = Rng.split_n rng reps in
  Mde_par.Pool.init ?pool ~site:"simsql.monte_carlo" reps (fun r ->
      simulate_query t streams.(r) ~steps ~query)

module Rules = struct
  type rule = {
    target : string;
    derive : Rng.t -> state -> Table.t;
  }

  let vg_rule ~target ~schema ~driver ~vg ~params ~combine =
    let derive rng state =
      let st =
        Mde_mcdb.Stochastic_table.define ~name:target ~schema ~driver:(driver state)
          ~vg
          ~params:(params state)
          ~combine
      in
      Mde_mcdb.Stochastic_table.instantiate st rng
    in
    { target; derive }

  let plan_rule ?pool ?impl ~target plan =
    (* A deterministic derivation: run a relational plan over the current
       state's tables on the columnar substrate. The rng is unused — the
       stochasticity of a chain step lives in its vg rules. *)
    let derive _rng state =
      let catalog = Catalog.create () in
      String_map.iter (fun name t -> Catalog.register catalog name t) state;
      Plan.execute ?pool ?impl catalog plan
    in
    { target; derive }

  let transition rules rng state =
    List.fold_left
      (fun acc rule -> with_table acc rule.target (rule.derive rng acc))
      state rules
end
