(** Database-valued Markov chains — SimSQL's extension of MCDB (§2.1).

    Where MCDB draws realizations of a static stochastic database D,
    SimSQL generates D[0], D[1], D[2], … where the stochastic mechanism
    producing D[i] may depend on D[i−1]: stochastic tables parametrize
    each other, recursively and across versions. Here a chain is an
    initial-state sampler plus a transition kernel over named-table
    states; {!Rules} builds transitions from per-table derivation rules
    so that "table A parametrizes table B which parametrizes the next
    version of A" is expressed directly. *)

open Mde_relational

type state
(** An immutable database state: a set of named tables. *)

val state_of_tables : (string * Table.t) list -> state
val table : state -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : state -> string -> Table.t option
val table_names : state -> string list
val with_table : state -> string -> Table.t -> state
(** Functional update. *)

type t = {
  initial : Mde_prob.Rng.t -> state;  (** sampler for D[0] *)
  transition : Mde_prob.Rng.t -> state -> state;  (** D[i] from D[i−1] *)
}

val simulate : t -> Mde_prob.Rng.t -> steps:int -> state array
(** One realization of D[0..steps] (length steps+1). Raises
    [Invalid_argument] on negative [steps]. *)

val simulate_query :
  t -> Mde_prob.Rng.t -> steps:int -> query:(state -> float) -> float array
(** One realization, reduced to a per-version scalar time series. *)

val monte_carlo :
  ?pool:Mde_par.Pool.t ->
  t ->
  Mde_prob.Rng.t ->
  steps:int ->
  reps:int ->
  query:(state -> float) ->
  float array array
(** [reps] independent realizations; result is reps × (steps+1). Each
    replication runs on a pre-split RNG stream, so with [?pool] the
    replications fan out across domains with bit-identical output.
    Raises [Invalid_argument] unless [reps] is positive. *)

(** Transition kernels assembled from per-table rules, applied in list
    order. Each rule sees the state as already updated by the preceding
    rules of the same step — matching SimSQL's topologically-ordered
    evaluation of dependent stochastic tables — and reads the pre-step
    version of any table not yet updated. *)
module Rules : sig
  type rule = {
    target : string;  (** table (version) this rule derives *)
    derive : Mde_prob.Rng.t -> state -> Table.t;
  }

  val vg_rule :
    target:string ->
    schema:Schema.t ->
    driver:(state -> Table.t) ->
    vg:Mde_mcdb.Vg.t ->
    params:(state -> Table.row -> Table.t list) ->
    combine:(Table.row -> Table.row -> Table.row) ->
    rule
  (** A rule that instantiates an MCDB-style stochastic table whose
      driver and VG parameters are queries over the current state —
      stochastic tables parametrized by stochastic tables. *)

  val plan_rule :
    ?pool:Mde_par.Pool.t ->
    ?impl:Mde_relational.Impl.t ->
    target:string ->
    Mde_relational.Plan.t ->
    rule
  (** A deterministic rule: derive [target] by executing a relational
      plan over the current state's tables on the columnar substrate —
      chain steps and one-shot queries share one execution layer. Scans
      resolve against a catalog holding every table of the state. *)

  val transition : rule list -> Mde_prob.Rng.t -> state -> state
end
