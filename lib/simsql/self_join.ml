open Mde_relational

type stats = {
  agents : int;
  candidate_pairs : int;
  naive_pairs : int;
  neighbor_links : int;
}

let step ?buckets ~neighbor ~update rng agents =
  let schema = Table.schema agents in
  let rows = Table.rows agents in
  let n = Array.length rows in
  let bucket_of =
    match buckets with
    | Some f -> f
    | None -> fun _ -> [ 0 ]
  in
  (* Partition phase: bucket id → member agent indices. *)
  let members : (int, int list ref) Hashtbl.t = Hashtbl.create (max 16 n) in
  let agent_buckets = Array.make n [] in
  Array.iteri
    (fun i row ->
      let bs = List.sort_uniq Int.compare (bucket_of row) in
      agent_buckets.(i) <- bs;
      List.iter
        (fun b ->
          match Hashtbl.find_opt members b with
          | Some l -> l := i :: !l
          | None -> Hashtbl.add members b (ref [ i ]))
        bs)
    rows;
  let candidate_pairs = ref 0 in
  let neighbor_links = ref 0 in
  let seen = Array.make n (-1) in
  let new_rows =
    Array.mapi
      (fun i row ->
        (* Candidate set: agents sharing any bucket, deduplicated via a
           per-agent stamp so shared buckets are not double counted. *)
        let candidates = ref [] in
        List.iter
          (fun b ->
            List.iter
              (fun j ->
                if j <> i && seen.(j) <> i then begin
                  seen.(j) <- i;
                  candidates := j :: !candidates
                end)
              !(Hashtbl.find members b))
          agent_buckets.(i);
        let candidates = List.sort Int.compare !candidates in
        candidate_pairs := !candidate_pairs + List.length candidates;
        let neighbors =
          List.filter_map
            (fun j ->
              if neighbor schema row rows.(j) then begin
                incr neighbor_links;
                Some rows.(j)
              end
              else None)
            candidates
        in
        update rng schema row neighbors)
      rows
  in
  ( Table.of_rows schema new_rows,
    {
      agents = n;
      candidate_pairs = !candidate_pairs;
      naive_pairs = n * n;
      neighbor_links = !neighbor_links;
    } )

let grid_buckets ~x ~y ~cell schema row =
  (* Not an assert: validation must survive [-noassert] builds. *)
  if not (cell > 0.) then invalid_arg "Self_join.grid_buckets: cell must be positive";
  let xi = Schema.column_index schema x and yi = Schema.column_index schema y in
  let px = Value.to_float row.(xi) and py = Value.to_float row.(yi) in
  let ix = Float.to_int (floor (px /. cell)) in
  let iy = Float.to_int (floor (py /. cell)) in
  let id cx cy = (cx * 0x9E3779B1) lxor (cy * 0x85EBCA77) in
  let out = ref [] in
  for dx = -1 to 1 do
    for dy = -1 to 1 do
      out := id (ix + dx) (iy + dy) :: !out
    done
  done;
  !out
